open Xdm
module R = Relational

type step = { step_db : string; step_dml : R.Database.dml }
type plan = step list

exception Not_updatable of string

let fail fmt = Printf.ksprintf (fun s -> raise (Not_updatable s)) fmt

(* ---------------- node navigation helpers ---------------- *)

let child_elements node =
  List.filter (fun c -> Node.kind c = Node.Element) (Node.children node)

let named_children node name =
  List.filter
    (fun c ->
      match Node.name c with
      | Some q -> q.Qname.local = name
      | None -> false)
    (child_elements node)

let nth_child node name idx =
  match List.nth_opt (named_children node name) (idx - 1) with
  | Some c -> c
  | None -> fail "no element %s[%d] in the submitted object" name idx

(* ---------------- reading row values ---------------- *)

(* read-time values of a lineage row: one entry per mapped field, Null
   when the element is absent *)
let row_values ~lookup_table (blk : Lineage.block) row_node =
  let tbl = lookup_table ~db:blk.Lineage.b_db ~table:blk.Lineage.b_table in
  let schema = R.Table.schema tbl in
  let col_type col =
    match
      List.find_opt
        (fun (c : R.Table.column) -> c.R.Table.col_name = col)
        schema.R.Table.columns
    with
    | Some c -> c.R.Table.col_type
    | None ->
      fail "lineage maps %s to unknown column %s.%s" blk.Lineage.b_row_elem
        blk.Lineage.b_table col
  in
  List.map
    (fun (f : Lineage.field) ->
      let v =
        match named_children row_node f.Lineage.f_elem with
        | el :: _ ->
          let s = Node.string_value el in
          if s = "" && col_type f.Lineage.f_column <> R.Value.T_text then
            R.Value.Null
          else (
            try R.Value.of_string (col_type f.Lineage.f_column) s
            with Failure m -> fail "%s" m)
        | [] -> R.Value.Null
      in
      (f.Lineage.f_column, v))
    blk.Lineage.b_fields

let value_of_leaf ~lookup_table (blk : Lineage.block) col s =
  let tbl = lookup_table ~db:blk.Lineage.b_db ~table:blk.Lineage.b_table in
  let schema = R.Table.schema tbl in
  match
    List.find_opt
      (fun (c : R.Table.column) -> c.R.Table.col_name = col)
      schema.R.Table.columns
  with
  | Some c ->
    if s = "" && c.R.Table.col_type <> R.Value.T_text then R.Value.Null
    else (
      try R.Value.of_string c.R.Table.col_type s
      with Failure m -> fail "%s" m)
  | None -> fail "unknown column %s.%s" blk.Lineage.b_table col

let pk_columns ~lookup_table (blk : Lineage.block) =
  let tbl = lookup_table ~db:blk.Lineage.b_db ~table:blk.Lineage.b_table in
  (R.Table.schema tbl).R.Table.primary_key

let pk_pred ~lookup_table blk read_values =
  R.Pred.conj
    (List.map
       (fun k ->
         match List.assoc_opt k read_values with
         | Some R.Value.Null | None ->
           fail
             "cannot locate source row: primary key column %s of %s is not \
              part of the data service shape"
             k blk.Lineage.b_table
         | Some v -> R.Pred.eq k v)
       (pk_columns ~lookup_table blk))

(* ---------------- locating changes in the lineage ---------------- *)

type located_leaf = {
  ll_block : Lineage.block;
  ll_row : Node.t;  (** current row element (new values) *)
  ll_column : string;
}

(* Walk a change path through the lineage, tracking the current block and
   row element. *)
let rec locate_leaf (blk : Lineage.block) row (path : Sdo.path) =
  match path with
  | [] -> fail "empty change path"
  | [ (leaf, _idx) ] -> (
    match Lineage.find_field blk leaf with
    | Some f ->
      { ll_block = blk; ll_row = row; ll_column = f.Lineage.f_column }
    | None ->
      if List.mem leaf blk.Lineage.b_opaque then
        fail
          "element %s of %s is computed (e.g. from a web service) and \
           cannot be updated"
          leaf blk.Lineage.b_row_elem
      else fail "element %s of %s is not mapped to any source column" leaf
             blk.Lineage.b_row_elem)
  | (name, idx) :: rest -> (
    match Lineage.find_child blk name with
    | Some c -> (
      match c.Lineage.c_wrapper with
      | Some _ -> (
        (* step into the wrapper, then the row element *)
        let wrapper_node = nth_child row name idx in
        match rest with
        | (row_name, row_idx) :: rest'
          when row_name = c.Lineage.c_block.Lineage.b_row_elem ->
          locate_leaf c.Lineage.c_block
            (nth_child wrapper_node row_name row_idx)
            rest'
        | _ -> fail "change path enters wrapper %s but not a %s row" name
                 c.Lineage.c_block.Lineage.b_row_elem)
      | None ->
        locate_leaf c.Lineage.c_block (nth_child row name idx) rest)
    | None -> fail "element %s of %s is not part of the lineage" name
                blk.Lineage.b_row_elem)

(* the block a path of element names leads to (for deletes, where the
   node is gone from the current object) *)
let rec block_of_names (blk : Lineage.block) = function
  | [] -> blk
  | name :: rest -> (
    match Lineage.find_child blk name with
    | Some c -> (
      match c.Lineage.c_wrapper with
      | Some _ -> (
        match rest with
        | row_name :: rest' when row_name = c.Lineage.c_block.Lineage.b_row_elem
          -> block_of_names c.Lineage.c_block rest'
        | _ ->
          fail "path enters wrapper %s but not a %s row" name
            c.Lineage.c_block.Lineage.b_row_elem)
      | None -> block_of_names c.Lineage.c_block rest)
    | None -> fail "element %s is not part of the lineage" name)

(* parent row + child entry for an insert under [parent_path] *)
let locate_insert (blk : Lineage.block) row parent_path child_name =
  let rec go blk row = function
    | [] -> (
      match Lineage.find_child blk child_name with
      | Some c -> (blk, row, c)
      | None ->
        fail "cannot insert %s: not a nested block of %s" child_name
          blk.Lineage.b_row_elem)
    | [ (name, _idx) ] when
        (match Lineage.find_child blk name with
        | Some { Lineage.c_wrapper = Some _; _ } -> true
        | _ -> false) -> (
      (* final wrapper step *)
      match Lineage.find_child blk name with
      | Some c when c.Lineage.c_block.Lineage.b_row_elem = child_name ->
        (blk, row, c)
      | Some _ -> fail "wrapper %s does not hold %s rows" name child_name
      | None -> assert false)
    | (name, idx) :: rest -> (
      match Lineage.find_child blk name with
      | Some c -> (
        match c.Lineage.c_wrapper with
        | Some _ -> (
          let wrapper_node = nth_child row name idx in
          match rest with
          | (row_name, row_idx) :: rest'
            when row_name = c.Lineage.c_block.Lineage.b_row_elem ->
            go c.Lineage.c_block (nth_child wrapper_node row_name row_idx) rest'
          | _ ->
            fail "insert path enters wrapper %s but not a %s row" name
              c.Lineage.c_block.Lineage.b_row_elem)
        | None -> go c.Lineage.c_block (nth_child row name idx) rest)
      | None -> fail "element %s is not part of the lineage" name)
  in
  go blk row parent_path

(* ---------------- statement generation ---------------- *)

let insert_dml ~lookup_table (blk : Lineage.block)
    ~(link : (string * string) list) ~parent_values node =
  let values = row_values ~lookup_table blk node in
  (* drop Nulls (absent elements), then add missing link columns from the
     parent row *)
  let present = List.filter (fun (_, v) -> v <> R.Value.Null) values in
  let present =
    List.fold_left
      (fun acc (ccol, pcol) ->
        if List.mem_assoc ccol acc then acc
        else
          match List.assoc_opt pcol parent_values with
          | Some v when v <> R.Value.Null -> (ccol, v) :: acc
          | _ -> acc)
      present link
  in
  {
    step_db = blk.Lineage.b_db;
    step_dml =
      R.Database.Insert
        {
          table = blk.Lineage.b_table;
          columns = List.map fst present;
          values = List.map snd present;
        };
  }

(* all inserts for a full (created) object: root row then children *)
let rec insert_object ~lookup_table (blk : Lineage.block)
    ~(link : (string * string) list) ~parent_values node =
  let me = insert_dml ~lookup_table blk ~link ~parent_values node in
  let my_values = row_values ~lookup_table blk node in
  let kids =
    List.concat_map
      (fun (c : Lineage.child) ->
        let rows =
          match c.Lineage.c_wrapper with
          | Some w ->
            List.concat_map
              (fun wrapper ->
                named_children wrapper c.Lineage.c_block.Lineage.b_row_elem)
              (named_children node w)
          | None -> named_children node c.Lineage.c_block.Lineage.b_row_elem
        in
        List.concat_map
          (fun rownode ->
            insert_object ~lookup_table c.Lineage.c_block ~link:c.Lineage.c_link
              ~parent_values:my_values rownode)
          rows)
      blk.Lineage.b_children
  in
  me :: kids

let delete_dml ~lookup_table ~policy (blk : Lineage.block) old_node =
  let old_values = row_values ~lookup_table blk old_node in
  let where =
    R.Pred.And
      ( pk_pred ~lookup_table blk old_values,
        Occ.condition policy ~read_values:old_values ~changed_columns:[] )
  in
  {
    step_db = blk.Lineage.b_db;
    step_dml = R.Database.Delete { table = blk.Lineage.b_table; where };
  }

(* deletes for a full object: children first, then the root row *)
let rec delete_object ~lookup_table ~policy (blk : Lineage.block) old_node =
  let kids =
    List.concat_map
      (fun (c : Lineage.child) ->
        let rows =
          match c.Lineage.c_wrapper with
          | Some w ->
            List.concat_map
              (fun wrapper ->
                named_children wrapper c.Lineage.c_block.Lineage.b_row_elem)
              (named_children old_node w)
          | None ->
            named_children old_node c.Lineage.c_block.Lineage.b_row_elem
        in
        List.concat_map
          (fun rownode ->
            delete_object ~lookup_table ~policy c.Lineage.c_block rownode)
          rows)
      blk.Lineage.b_children
  in
  kids @ [ delete_dml ~lookup_table ~policy blk old_node ]

(* ---------------- whole-object planners ---------------- *)

let plan_create_object ~lookup_table ~lineage node =
  insert_object ~lookup_table lineage ~link:[] ~parent_values:[] node

let plan_delete_object ~lookup_table ~policy ~lineage node =
  delete_object ~lookup_table ~policy lineage node

let rec replace_rows ~lookup_table (blk : Lineage.block) node =
  let values = row_values ~lookup_table blk node in
  let pks = pk_columns ~lookup_table blk in
  let set = List.filter (fun (c, _) -> not (List.mem c pks)) values in
  let me =
    if set = [] then []
    else
      [
        {
          step_db = blk.Lineage.b_db;
          step_dml =
            R.Database.Update
              {
                table = blk.Lineage.b_table;
                set;
                where = pk_pred ~lookup_table blk values;
              };
        };
      ]
  in
  let kids =
    List.concat_map
      (fun (c : Lineage.child) ->
        let rows =
          match c.Lineage.c_wrapper with
          | Some w ->
            List.concat_map
              (fun wrapper ->
                named_children wrapper c.Lineage.c_block.Lineage.b_row_elem)
              (named_children node w)
          | None -> named_children node c.Lineage.c_block.Lineage.b_row_elem
        in
        List.concat_map
          (fun rownode -> replace_rows ~lookup_table c.Lineage.c_block rownode)
          rows)
      blk.Lineage.b_children
  in
  me @ kids

let plan_replace_object ~lookup_table ~lineage node =
  replace_rows ~lookup_table lineage node

(* ---------------- the planner ---------------- *)

let plan ~lookup_table ~policy ~lineage (dg : Sdo.t) =
  let steps = ref [] in
  let emit s = steps := s :: !steps in
  List.iter
    (fun change ->
      match change with
      | Sdo.Created i ->
        let node = Sdo.root dg i in
        List.iter emit
          (insert_object ~lookup_table lineage ~link:[] ~parent_values:[] node)
      | Sdo.Deleted (_i, old) ->
        List.iter emit (delete_object ~lookup_table ~policy lineage old)
      | Sdo.Modified (i, oc) ->
        let obj = Sdo.root dg i in
        (* group leaf changes by target row (node identity) *)
        let groups : (Node.t * (located_leaf * string) list ref) list ref =
          ref []
        in
        List.iter
          (fun (lc : Sdo.leaf_change) ->
            let located = locate_leaf lineage obj lc.Sdo.leaf_path in
            let group =
              match
                List.find_opt
                  (fun (row, _) -> Node.is_same row located.ll_row)
                  !groups
              with
              | Some (_, g) -> g
              | None ->
                let g = ref [] in
                groups := !groups @ [ (located.ll_row, g) ];
                g
            in
            group := !group @ [ (located, lc.Sdo.old_value) ])
          oc.Sdo.leaves;
        List.iter
          (fun (row, group) ->
            let blk = (fst (List.hd !group)).ll_block in
            let current = row_values ~lookup_table blk row in
            (* reconstruct read-time values: changed columns use the old
               value from the change summary *)
            let changed_cols =
              List.map (fun (l, _) -> l.ll_column) !group
            in
            let read_values =
              List.map
                (fun (col, v) ->
                  match
                    List.find_opt (fun (l, _) -> l.ll_column = col) !group
                  with
                  | Some (l, old_s) ->
                    (col, value_of_leaf ~lookup_table blk l.ll_column old_s)
                  | None -> (col, v))
                current
            in
            let set =
              List.map
                (fun (l, _) ->
                  ( l.ll_column,
                    match List.assoc_opt l.ll_column current with
                    | Some v -> v
                    | None -> R.Value.Null ))
                !group
            in
            let where =
              R.Pred.And
                ( pk_pred ~lookup_table blk read_values,
                  Occ.condition policy ~read_values
                    ~changed_columns:changed_cols )
            in
            emit
              {
                step_db = blk.Lineage.b_db;
                step_dml =
                  R.Database.Update
                    { table = blk.Lineage.b_table; set; where };
              })
          !groups;
        (* nested element deletes *)
        List.iter
          (fun (d : Sdo.element_delete) ->
            let names = List.map fst d.Sdo.deleted_path in
            let blk = block_of_names lineage names in
            emit (delete_dml ~lookup_table ~policy blk d.Sdo.deleted_old))
          oc.Sdo.element_deletes;
        (* nested element inserts *)
        List.iter
          (fun (ins : Sdo.element_insert) ->
            let child_name =
              match Node.name ins.Sdo.inserted_node with
              | Some q -> q.Qname.local
              | None -> fail "inserted node is not an element"
            in
            let parent_blk, parent_row, child =
              locate_insert lineage obj ins.Sdo.inserted_parent child_name
            in
            let parent_values =
              row_values ~lookup_table parent_blk parent_row
            in
            emit
              (insert_dml ~lookup_table child.Lineage.c_block
                 ~link:child.Lineage.c_link ~parent_values
                 ins.Sdo.inserted_node))
          oc.Sdo.element_inserts)
    (Sdo.changes dg);
  List.rev !steps

let plan_to_strings plan =
  List.map
    (fun s -> Printf.sprintf "%s: %s" s.step_db (R.Database.dml_to_sql s.step_dml))
    plan

type outcome = {
  committed : bool;
  statements : int;
  reason : string option;
}

(* The write lockset of a plan: every (db, table) the plan writes, plus
   the FK neighbors whose state the statements' constraint checks read —
   tables referenced by an inserting table (the insert validates the
   parent row exists) and tables referencing a deleting table (the
   delete validates nothing points at the victims). Locking the
   neighbors makes those checks race-free without serializing against
   writers of unrelated tables. Unknown tables are skipped — the
   executor will produce the proper statement error. *)
let lockset ~db_of plan =
  let add acc key = if List.mem key acc then acc else key :: acc in
  let tbl_opt dbn tn =
    match db_of dbn with
    | db -> ( try Some (R.Database.table db tn) with R.Database.Db_error _ -> None)
    | exception _ -> None
  in
  let locks =
    List.fold_left
      (fun acc s ->
        let tn =
          match s.step_dml with
          | R.Database.Insert { table; _ }
          | R.Database.Update { table; _ }
          | R.Database.Delete { table; _ } -> table
        in
        match tbl_opt s.step_db tn with
        | None -> acc
        | Some tbl -> (
          let acc = add acc (s.step_db, tn) in
          match s.step_dml with
          | R.Database.Insert _ ->
            List.fold_left
              (fun acc (fk : R.Table.foreign_key) ->
                match tbl_opt s.step_db fk.R.Table.fk_ref_table with
                | Some _ -> add acc (s.step_db, fk.R.Table.fk_ref_table)
                | None -> acc)
              acc
              (R.Table.schema tbl).R.Table.foreign_keys
          | R.Database.Delete _ ->
            List.fold_left
              (fun acc other ->
                if
                  List.exists
                    (fun (fk : R.Table.foreign_key) ->
                      fk.R.Table.fk_ref_table = tn)
                    (R.Table.schema other).R.Table.foreign_keys
                then add acc (s.step_db, R.Table.name other)
                else acc)
              acc
              (R.Database.tables (db_of s.step_db))
          | R.Database.Update _ -> acc))
      [] plan
  in
  (* the deadlock-avoiding total order: sorted by (db name, table name) *)
  List.sort compare locks

let execute ~db_of plan =
  if plan = [] then { committed = true; statements = 0; reason = None }
  else begin
    let db_names =
      List.sort_uniq String.compare (List.map (fun s -> s.step_db) plan)
    in
    let dbs = List.map db_of db_names in
    (* acquire the per-table write locks in the global order before the
       XA round begins; every concurrent submit sorts its lockset the
       same way, so two submits can never hold-and-wait in a cycle.
       Disjoint locksets proceed in parallel. *)
    let lock_tbls =
      List.filter_map
        (fun (dbn, tn) ->
          try Some (R.Database.table (db_of dbn) tn)
          with R.Database.Db_error _ -> None)
        (lockset ~db_of plan)
    in
    List.iter R.Table.lock_write lock_tbls;
    Fun.protect
      ~finally:(fun () -> List.iter R.Table.unlock_write (List.rev lock_tbls))
    @@ fun () ->
    let count = ref 0 in
    match
      R.Xa.run dbs (fun () ->
          List.iter
            (fun s ->
              let db = db_of s.step_db in
              let affected = R.Database.exec db s.step_dml in
              (match s.step_dml with
              | R.Database.Update { table; _ } when affected = 0 ->
                raise
                  (R.Database.Db_error
                     (Printf.sprintf
                        "optimistic concurrency conflict: %s row in %s was \
                         changed or removed by another client"
                        table s.step_db))
              | R.Database.Delete { table; _ } when affected = 0 ->
                raise
                  (R.Database.Db_error
                     (Printf.sprintf
                        "optimistic concurrency conflict: %s row in %s was \
                         already changed or removed"
                        table s.step_db))
              | _ -> ());
              incr count)
            plan)
    with
    | Ok () -> { committed = true; statements = !count; reason = None }
    | Error reason -> { committed = false; statements = 0; reason = Some reason }
  end
