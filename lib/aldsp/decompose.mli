(** Update decomposition (paper section II.C).

    Turns an SDO change summary into per-source SQL statements using the
    primary read function's lineage, conditions them per the optimistic
    concurrency policy, and executes them atomically across the affected
    databases with XA two-phase commit.

    Unaffected sources see no statements at all; unchanged columns are
    not written. *)

type step = { step_db : string; step_dml : Relational.Database.dml }

type plan = step list

exception Not_updatable of string
(** Raised while planning when a change touches a computed (opaque) leaf
    or an element the lineage cannot map to a source row. *)

val plan :
  lookup_table:(db:string -> table:string -> Relational.Table.t) ->
  policy:Occ.policy ->
  lineage:Lineage.block ->
  Sdo.t ->
  plan
(** Build the statement plan for a submitted datagraph. Raises
    {!Not_updatable} on unmappable changes; an empty change summary
    yields an empty plan. *)

val plan_to_strings : plan -> string list
(** The generated SQL, with its target database: ["db1: UPDATE …"]. *)

(** {1 Whole-object planners}

    Used by the auto-generated create/update/delete methods of logical
    data services (paper section III.D.1: "ALDSP 3.0 will automatically
    generate create, update, and delete methods … for logical data
    services whose read logic it can introspect and reverse-engineer"). *)

val plan_create_object :
  lookup_table:(db:string -> table:string -> Relational.Table.t) ->
  lineage:Lineage.block ->
  Xdm.Node.t ->
  plan
(** INSERTs for the object's root row and, recursively, its nested rows
    (parent-link columns filled from the enclosing row when absent). *)

val plan_delete_object :
  lookup_table:(db:string -> table:string -> Relational.Table.t) ->
  policy:Occ.policy ->
  lineage:Lineage.block ->
  Xdm.Node.t ->
  plan
(** DELETEs, children before parents, conditioned per the policy. *)

val plan_replace_object :
  lookup_table:(db:string -> table:string -> Relational.Table.t) ->
  lineage:Lineage.block ->
  Xdm.Node.t ->
  plan
(** Field-wise UPDATE by primary key of every mapped row of the object
    (all mapped non-key columns are written, absent elements as NULL).
    Rows added to or removed from the instance are not reconciled — use
    the SDO change-summary path for structural changes. *)

type outcome = {
  committed : bool;
  statements : int;  (** statements executed (0 when rolled back) *)
  reason : string option;  (** rollback reason *)
}

val lockset :
  db_of:(string -> Relational.Database.t) ->
  plan ->
  (string * string) list
(** The per-table write locks the plan must hold: every (db, table) it
    writes plus the FK neighbors its constraint checks read — parents
    of inserting tables, referencing tables of deleting tables — sorted
    in the deadlock-avoiding total order (db name, then table name). *)

val execute : db_of:(string -> Relational.Database.t) -> plan -> outcome
(** Acquire the plan's {!lockset} in order, then run the plan inside
    one XA transaction across the involved databases; the new table
    versions publish atomically at commit and the locks are released.
    Submits with disjoint locksets execute concurrently. A conditioned
    UPDATE/DELETE that affects no row is an optimistic-concurrency
    conflict: the transaction aborts and every source rolls back. *)
