(** The dataspace: ALDSP's deployment unit. Owns the XQSE session,
    introspects physical sources into data services (paper section II.A),
    hosts logical data services, and serves the SDO read/submit cycle of
    Figure 4 (including lineage-driven update decomposition, optimistic
    concurrency, XA execution, and update overrides). *)

open Xdm

type t

val create :
  ?optimize:bool -> ?instr:Instr.t -> ?resilience:Resilience.Control.t ->
  unit -> t
(** [instr] (default {!Instr.disabled}) is shared with the XQSE session
    and propagated to every database and web service at registration:
    submits run in a [submit] span and report [sdo.submits],
    [sql.generated] (planned statements) and [sdo.statements] (executed
    ones); the sources report [sql.executed], [rows.scanned]/[.fetched]
    and [ws.calls]/[ws.faults].

    [resilience] (default: a fresh control with no plan and pass-through
    policies) governs every source call the dataspace makes; registered
    databases and web services are attached to it, putting them on its
    virtual clock and under its fault plan. *)

val session : t -> Xqse.Session.t

val instr : t -> Instr.t
(** The handle given to {!create}. *)

val resilience : t -> Resilience.Control.t
(** The resilience control guarding this dataspace's source calls: set
    per-source policies ({!Resilience.Control.set_policy}), mark sources
    degradable ({!Resilience.Control.set_degradable}), install a fault
    plan, or inspect breakers and the degradation report. Guard
    failures surface to queries as XQSE-catchable errors with stable
    codes: [err:RESX0001] (timeout), [err:RESX0002] (circuit open),
    [err:RESX0003] (retries exhausted), [err:RESX0004] (unhandled
    injected source fault on a read path). *)

val services : t -> Data_service.t list
val find_service : t -> string -> Data_service.t option
val database : t -> string -> Relational.Database.t
(** @raise Not_found for unknown databases. *)

val databases : t -> Relational.Database.t list
(** Every registered database, sorted by name (for the console's
    per-table MVCC report). *)

val describe : t -> string
(** Design-view dump of every service (Figures 1-2 stand-in). *)

(** {1 Source registration (introspection)} *)

val register_database : t -> Relational.Database.t -> Data_service.t list
(** Introspect a relational database: one entity data service per table
    (read function, create/update/delete procedures, and navigation
    functions for each foreign key, both directions). Functions live in
    namespace [ld:<db>/<TABLE>]; a prefix equal to the lowercased table
    name is pre-declared in the session. *)

val register_web_service : t -> Webservice.t -> Data_service.t
(** Introspect a web service (WSDL-style metadata): a library data
    service with one function per operation. Faults surface as XQuery
    errors with code [{service-ns}Fault] so XQSE try/catch can handle
    them. *)

(** {1 Logical services} *)

val create_entity_service :
  t ->
  name:string ->
  namespace:string ->
  shape:Schema.element_decl ->
  methods:(string * Data_service.method_kind) list ->
  ?primary_read:string ->
  ?dependencies:string list ->
  ?generate_cud:bool ->
  string ->
  Data_service.t
(** [create_entity_service ds ~name ~namespace ~shape ~methods source]
    deploys a logical entity data service whose methods are the XQuery
    functions / XQSE procedures declared in [source] (an XQSE library
    program). [methods] classifies declared method local names;
    [primary_read] defaults to the first [Read_function].

    When [generate_cud] is [true] (the default) and the primary read
    function's lineage is analyzable, [create<Shape>], [update<Shape>]
    and [delete<Shape>] procedures are generated automatically (paper
    section III.D.1): create inserts the object's rows into all mapped
    sources and returns [<Shape_KEY>] elements; update rewrites every
    mapped row field-wise by primary key; delete removes the object's
    rows, children first. A navigation function [get<Row>] is also
    generated per nested block, probing the {e current} source rows
    related to an instance (paper II.A). *)

val lineage_of : t -> Data_service.t -> (Lineage.block, string) result
(** The (cached) lineage of the service's primary read function. Logical
    services may compose over other logical services' read functions;
    lineage then composes through the inner service's lineage (cycles
    are rejected). *)

val explain : t -> Data_service.t -> meth:string -> (string, string) result
(** Optimizer report for one read method: pass counters plus the
    rewritten query printed back as XQuery. *)

val infer_shape : t -> Data_service.t -> (Xdm.Schema.element_decl, string) result
(** Reverse-engineer the service's XML shape from its primary read
    lineage (element names, simple types from the source columns,
    optionality from nullability, repetition for nested blocks). *)

val catalog_ns : string
(** Namespace of the built-in catalog: [catalog:services()] returns one
    [<Service>] element per data service (name, kind, origin, methods,
    dependencies) — the Figure 1 design view as queryable data. *)

val resil_ns : string
(** Namespace of the built-in resilience report: [resil:degradations()]
    returns one [<Degradation source code at>] element per degraded
    read, oldest first (prefix [resil] is pre-declared). *)

(** {1 Result cache}

    A lineage-invalidated cache for pure data-service reads
    ({!Cache}): calls to physical reads/navigations and to effect-free
    logical read methods are keyed on (function, arguments, session
    fingerprint) and served from materialized prior results; a
    committed submit evicts exactly the entries whose lineage touches
    the tables it wrote. Degraded reads are never admitted. *)

val enable_result_cache : ?cap:int -> t -> Cache.handle
(** Switch the result cache on (idempotent — returns the existing
    handle when already enabled) and install it into the dataspace's
    session, so subsequent reads are served through it and
    {!Xqse.Session.with_config} forks of the session share its store.
    [cap] (default 256) bounds the entry count. Enable after source and
    service registration: cacheability verdicts are memoized. *)

val disable_result_cache : t -> unit
val result_cache : t -> Cache.handle option

val footprint_of : t -> Qname.t -> int -> Cache.footprint option
(** The admission verdict for calls to [(name, arity)]: [Some tables]
    when cacheable (pure read with known lineage), [None] otherwise.
    Exposed for the cache test suites and the differential oracle. *)

(** {1 Client API (Figure 4)} *)

val call : t -> Qname.t -> Item.seq list -> Item.seq
(** Invoke any data-service method by QName. *)

val get : t -> Data_service.t -> meth:string -> Item.seq list -> Sdo.t
(** Invoke a read method and wrap the resulting objects in a datagraph. *)

type submit_result = {
  sr_committed : bool;
  sr_statements : int;
  sr_sql : string list;  (** the decomposed statements, with databases *)
  sr_reason : string option;
}

val submit :
  t ->
  Data_service.t ->
  ?policy:Occ.policy ->
  ?validate:bool ->
  Sdo.t ->
  submit_result
(** Submit a changed datagraph back through the service: the graph is
    serialized and re-parsed (the Figure 4 wire round trip), the change
    summary decomposed against the primary read function's lineage, and
    the statements executed in one XA transaction. Default policy:
    {!Occ.Updated_values}. With [validate] (default off), every
    submitted object is first checked against the service shape.

    Submits are strict, never degraded: when a breaker is open for any
    source the service depends on (or any database the plan targets),
    the submit fails up front with [err:RESX0002] before a single
    statement runs.
    @raise Decompose.Not_updatable when a change cannot be mapped or
    validation fails. *)

(** {1 Update overrides} *)

type update_request = {
  ur_service : Data_service.t;
  ur_datagraph : Sdo.t;
  ur_policy : Occ.policy;
}

type override = t -> update_request -> default:(unit -> submit_result) -> submit_result
(** The ALDSP 2.5 "Java update override" analog: takes over update
    processing for a service, optionally delegating to the default
    decomposition. *)

val set_override : t -> Data_service.t -> override option -> unit

val set_xqse_override : t -> Data_service.t -> Qname.t -> unit
(** Install an XQSE procedure as the service's update override — the
    paper's central motivation: custom update handling written in XQSE
    instead of Java. On submit, the procedure is called with the
    submitted datagraph as one [sdo:datagraph] element and takes over
    update processing entirely; errors it raises propagate to the
    caller. *)
