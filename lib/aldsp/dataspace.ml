open Xdm
module R = Relational

let log_src = Logs.Src.create "aldsp.dataspace" ~doc:"ALDSP dataspace events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type update_request = {
  ur_service : Data_service.t;
  ur_datagraph : Sdo.t;
  ur_policy : Occ.policy;
}

type submit_result = {
  sr_committed : bool;
  sr_statements : int;
  sr_sql : string list;
  sr_reason : string option;
}

type t = {
  sess : Xqse.Session.t;
  resil : Resilience.Control.t;
  mutable svcs : Data_service.t list;
  dbs : (string, R.Database.t) Hashtbl.t;
  source_fns : (string * string, Lineage.source_fn) Hashtbl.t;
      (* keyed by (uri, local) — prefixes are not significant *)
  lineage_cache : (string, (Lineage.block, string) result) Hashtbl.t;
  read_sources : (string, string) Hashtbl.t;  (* service -> raw XQSE source *)
  overrides : (string, override) Hashtbl.t;
  lineage_in_progress : (string, unit) Hashtbl.t;  (* cycle guard *)
  mutable ds_cache : Cache.handle option;
      (* the result cache for pure data-service reads; [None] = off *)
  cacheable_memo : (string * string * int, Cache.footprint option) Hashtbl.t;
      (* memoized cacheability/footprint per (uri, local, arity); reset
         when caching is (re-)enabled *)
}

and override =
  t -> update_request -> default:(unit -> submit_result) -> submit_result

let catalog_ns = "urn:aldsp:catalog"
let resil_ns = "urn:aldsp:resilience"

(* the dataspace catalog as queryable XML — the Figure 1 "design view"
   exposed to ad-hoc queries *)
let catalog_xml svcs =
  List.map
    (fun (svc : Data_service.t) ->
      let methods =
        List.map
          (fun (m : Data_service.ds_method) ->
            Node.element
              ~attrs:
                [
                  (Qname.local "kind", Data_service.kind_to_string m.Data_service.m_kind);
                  (Qname.local "name", m.Data_service.m_name.Qname.local);
                  (Qname.local "arity", string_of_int m.Data_service.m_arity);
                ]
              (Qname.local "Method")
              (if m.Data_service.m_doc = "" then []
               else [ Node.text m.Data_service.m_doc ]))
          svc.Data_service.ds_methods
      in
      let deps =
        List.map
          (fun d -> Node.element (Qname.local "DependsOn") [ Node.text d ])
          svc.Data_service.ds_dependencies
      in
      Item.Node
        (Node.element
           ~attrs:
             [
               (Qname.local "name", svc.Data_service.ds_name);
               ( Qname.local "kind",
                 match svc.Data_service.ds_kind with
                 | Data_service.Entity _ -> "entity"
                 | Data_service.Library -> "library" );
               ( Qname.local "origin",
                 match svc.Data_service.ds_origin with
                 | Data_service.Physical_relational _ -> "relational"
                 | Data_service.Physical_webservice _ -> "webservice"
                 | Data_service.Logical -> "logical" );
               (Qname.local "namespace", svc.Data_service.ds_namespace);
             ]
           (Qname.make ~uri:catalog_ns "Service")
           (methods @ deps)))
    svcs

let create ?(optimize = true) ?(instr = Instr.disabled) ?resilience () =
  let resil =
    match resilience with
    | Some r ->
      Resilience.Control.set_instr r instr;
      r
    | None -> Resilience.Control.create ~instr ()
  in
  let t =
    {
      sess =
        Xqse.Session.create
          ~config:{ Xqse.Session.default_config with optimize; instr }
          ();
      resil;
      svcs = [];
      dbs = Hashtbl.create 4;
      source_fns = Hashtbl.create 32;
      lineage_cache = Hashtbl.create 8;
      read_sources = Hashtbl.create 8;
      overrides = Hashtbl.create 4;
      lineage_in_progress = Hashtbl.create 4;
      ds_cache = None;
      cacheable_memo = Hashtbl.create 32;
    }
  in
  Xqse.Session.declare_namespace t.sess "catalog" catalog_ns;
  Xqse.Session.register_function t.sess
    (Qname.make ~uri:catalog_ns "services")
    0
    (fun _ -> catalog_xml t.svcs);
  (* the degradation report as queryable XML: which sources were served
     degraded, when (virtual ms), and why *)
  Xqse.Session.declare_namespace t.sess "resil" resil_ns;
  Xqse.Session.register_function t.sess
    (Qname.make ~uri:resil_ns "degradations")
    0
    (fun _ ->
      List.map
        (fun (d : Resilience.Control.degradation) ->
          Item.Node
            (Node.element
               ~attrs:
                 [
                   (Qname.local "source", d.Resilience.Control.dg_source);
                   (Qname.local "code", d.Resilience.Control.dg_code);
                   ( Qname.local "at",
                     Printf.sprintf "%.0f" d.Resilience.Control.dg_at );
                 ]
               (Qname.make ~uri:resil_ns "Degradation")
               [ Node.text d.Resilience.Control.dg_message ]))
        (Resilience.Control.degradations resil));
  (* every query entry (Session.run / call) pins an MVCC snapshot of
     all registered source tables, so a query's reads — including
     cross-table and cross-database joins — resolve against one
     consistent version cut regardless of concurrent submits. The table
     list is read at query start, so later register_database calls are
     covered. *)
  Xqse.Session.set_snapshot_scope t.sess
    (Some
       {
         Xqse.Session.scope =
           (fun f ->
             let tables =
               Hashtbl.fold
                 (fun _ db acc -> R.Database.tables db @ acc)
                 t.dbs []
             in
             R.Table.with_snapshot tables f);
       });
  t

let session t = t.sess
let instr t = Xqse.Session.instr t.sess

let databases t =
  List.sort
    (fun a b -> String.compare (R.Database.name a) (R.Database.name b))
    (Hashtbl.fold (fun _ db acc -> db :: acc) t.dbs [])
let resilience t = t.resil
let services t = t.svcs
let find_service t name = List.find_opt (fun s -> s.Data_service.ds_name = name) t.svcs
let database t name =
  match Hashtbl.find_opt t.dbs name with
  | Some db -> db
  | None -> raise Not_found

let describe t =
  String.concat "\n" (List.map Data_service.describe t.svcs)

let lookup_table t ~db ~table = R.Database.table (database t db) table

(* ------------------------------------------------------------------ *)
(* Result cache plumbing                                               *)
(* ------------------------------------------------------------------ *)

(* the verdict vouched for every source read registration: effect-free
   (a read mutates nothing observable), fallible (sources fail, chaos
   injects), constructing (each call builds fresh row/response XML) *)
let source_read_purity = (false, true, true)

(* every (db, table) pair a lineage block was derived from, nested
   blocks included — the invalidation footprint of a cached result *)
let rec block_tables (b : Lineage.block) acc =
  List.fold_left
    (fun acc (c : Lineage.child) -> block_tables c.Lineage.c_block acc)
    ((b.Lineage.b_db, b.Lineage.b_table) :: acc)
    b.Lineage.b_children

let lineage_tables blk = List.sort_uniq compare (block_tables blk [])

let invalidate_cache_tables t tables =
  match t.ds_cache with
  | Some h when tables <> [] ->
    ignore (Cache.invalidate h ~instr:(instr t) tables : int)
  | _ -> ()

let flush_cache t =
  match t.ds_cache with Some h -> Cache.flush h | None -> ()

(* the exact write set of a decomposition plan: the tables its
   statements touch, nothing more — so a submit decomposed onto ORDER
   leaves CUSTOMER-only cache entries alone *)
let plan_tables (plan : Decompose.plan) =
  List.sort_uniq compare
    (List.map
       (fun (s : Decompose.step) ->
         ( s.Decompose.step_db,
           match s.Decompose.step_dml with
           | R.Database.Insert { table; _ }
           | R.Database.Update { table; _ }
           | R.Database.Delete { table; _ } -> table ))
       plan)

(* wrap a write procedure so the tables it targets are evicted whatever
   happens: without a surrounding transaction a mid-list failure leaves
   the rows already written, so the eviction must not depend on a clean
   exit *)
let invalidating t tables impl args =
  Fun.protect ~finally:(fun () -> invalidate_cache_tables t tables)
    (fun () -> impl args)

(* ------------------------------------------------------------------ *)
(* The source-call boundary                                            *)
(* ------------------------------------------------------------------ *)

(* Every call into a registered source goes through [Control.guard]
   here, so policies (timeout, retry, breaker) apply uniformly; guard
   failures surface as XQSE-catchable errors with stable codes in the
   err: namespace. *)

let raise_resil_error ~source code message =
  Item.raise_error
    (Qname.err (Resilience.Control.code_name code))
    (Printf.sprintf "%s: %s" source message)

(* a statement-ish call (exec, ws invoke): native faults keep their
   legacy wrapping via [on_native] *)
let guarded t ~source ~on_native f =
  try Resilience.Control.guard t.resil ~source f with
  | Resilience.Control.Error { source; code; message } ->
    raise_resil_error ~source code message
  | e -> on_native e

(* Overload brownout: while the server's pressure signal is asserted,
   a degradable source degrades *proactively* — the call is skipped
   outright, saving its full service cost, and the degradation is noted
   exactly like a fault-driven degrade. The note moves the degradation
   epoch, so the PR 8 result cache refuses admission to anything
   evaluated under brownout (warm entries admitted before the brownout
   keep serving — they short-circuit above this boundary). *)
let browned_out t ~source =
  Resilience.Control.in_brownout t.resil
  && Resilience.Control.is_degradable t.resil ~source

let note_brownout t ~source =
  Log.info (fun m -> m "browned-out read of %s skipped" source);
  Resilience.Control.note_degraded t.resil ~source ~code:"BROWNOUT"
    ~message:"read degraded proactively under overload pressure"

(* degradable sources degrade to an empty sequence plus a degradation
   report instead of failing the read *)
let degrade_on_error t ~source call =
  if not (Resilience.Control.is_degradable t.resil ~source) then call ()
  else if browned_out t ~source then begin
    note_brownout t ~source;
    []
  end
  else
    try call ()
    with Item.Error { code; message; _ } ->
      Log.info (fun m ->
          m "degraded read of %s: %s %s" source (Qname.to_string code) message);
      Resilience.Control.note_degraded t.resil ~source ~code:code.Qname.local
        ~message;
      []

(* A query-path read, surfaced as a cursor: the guard and the degrade
   decision wrap the *open* — the read check plus cursor construction —
   so exactly one guarded call happens per read invocation; row pulls
   then stream outside the guard (they cannot fail: the cursors below
   snapshot their rows at open). Leftover injected faults get their own
   stable code RESX0004 (source fault, no retry policy); a degraded
   read yields the empty cursor. *)
let guarded_read_cur t ~source f =
  let open_guarded () =
    try Resilience.Control.guard t.resil ~source f with
    | Resilience.Control.Error { source; code; message } ->
      raise_resil_error ~source code message
    | R.Database.Db_error msg -> Item.raise_error (Qname.err "RESX0004") msg
  in
  if not (Resilience.Control.is_degradable t.resil ~source) then
    open_guarded ()
  else if browned_out t ~source then begin
    note_brownout t ~source;
    Cursor.empty ()
  end
  else
    try open_guarded ()
    with Item.Error { code; message; _ } ->
      Log.info (fun m ->
          m "degraded read of %s: %s %s" source (Qname.to_string code) message);
      Resilience.Control.note_degraded t.resil ~source ~code:code.Qname.local
        ~message;
      Cursor.empty ()

(* ------------------------------------------------------------------ *)
(* Relational introspection                                            *)
(* ------------------------------------------------------------------ *)

let table_ns db_name table_name = Printf.sprintf "ld:%s/%s" db_name table_name

(* one row element per pull; the row-to-XML mapping is total, so the
   mapped cursor keeps the scan/select cursor's purity (rows are
   snapshotted at open) and streaming consumers may abandon it early *)
let rows_to_cursor tbl rows =
  Cursor.map ~total:true
    (fun row -> Item.Node (Rowxml.row_to_xml tbl row))
    rows

let scan_to_cursor tbl = rows_to_cursor tbl (R.Table.scan_cursor tbl)

let one_table_arg what args =
  match args with
  | [ seq ] -> Item.nodes_only seq
  | _ -> Item.type_error (what ^ ": expected one argument")

let elem_seqtype ?(occ = Seqtype.Star) name =
  Seqtype.Typed (Seqtype.Element_type (Some (Qname.local name)), occ)

let register_database t db =
  let db_name = R.Database.name db in
  if Hashtbl.mem t.dbs db_name then
    invalid_arg (Printf.sprintf "database %s is already registered" db_name);
  R.Database.set_instr db (instr t);
  Resilience.Control.attach t.resil (R.Database.faults db);
  Hashtbl.replace t.dbs db_name db;
  let new_services =
    List.map
      (fun tbl ->
        let schema = R.Table.schema tbl in
        let tname = schema.R.Table.tbl_name in
        let ns = table_ns db_name tname in
        Xqse.Session.declare_namespace t.sess (String.lowercase_ascii tname) ns;
        let svc =
          Data_service.make ~name:(db_name ^ "/" ^ tname) ~namespace:ns
            ~kind:(Data_service.Entity { shape = Rowxml.shape_of_table tbl })
            ~origin:(Data_service.Physical_relational { db = db_name; table = tname })
        in
        let fn local = Qname.make ~uri:ns local in
        (* --- read function:  t:TABLE() as element(TABLE)* --- *)
        let read_name = fn tname in
        Xqse.Session.register_function_cursor t.sess read_name 0
          ~purity:source_read_purity (fun _ ->
            guarded_read_cur t ~source:db_name (fun () ->
                R.Database.read_check db;
                scan_to_cursor tbl));
        Hashtbl.replace t.source_fns (read_name.Qname.uri, read_name.Qname.local)
          (Lineage.Read_fn { db = db_name; table = tname });
        Data_service.add_method svc
          {
            Data_service.m_name = read_name;
            m_kind = Data_service.Read_function;
            m_arity = 0;
            m_doc = Printf.sprintf "all rows of %s.%s" db_name tname;
          };
        (* --- create procedure --- *)
        let create_name = fn ("create" ^ tname) in
        Xqse.Session.register_procedure t.sess create_name 1
          ~params:[ (Qname.local "rows", Some (elem_seqtype tname)) ]
          ~return:(elem_seqtype (tname ^ "_KEY"))
          (invalidating t [ (db_name, tname) ] (fun args ->
            let rows = one_table_arg ("create" ^ tname) args in
            List.map
              (fun node ->
                let pairs = Rowxml.xml_to_pairs tbl node in
                let pairs =
                  List.filter (fun (_, v) -> v <> R.Value.Null) pairs
                in
                ignore
                  (guarded t ~source:db_name
                     ~on_native:(function
                       | R.Database.Db_error msg ->
                         Item.raise_error (Qname.make ~uri:ns "CreateError") msg
                       | e -> raise e)
                     (fun () ->
                       R.Database.exec db
                         (R.Database.Insert
                            {
                              table = tname;
                              columns = List.map fst pairs;
                              values = List.map snd pairs;
                            })));
                let key_el =
                  Node.element
                    (Qname.local (tname ^ "_KEY"))
                    (List.map
                       (fun k ->
                         Node.element (Qname.local k)
                           [
                             Node.text
                               (match List.assoc_opt k pairs with
                               | Some v -> R.Value.to_string v
                               | None -> "");
                           ])
                       schema.R.Table.primary_key)
                in
                Item.Node key_el)
              rows));
        Data_service.add_method svc
          {
            Data_service.m_name = create_name;
            m_kind = Data_service.Create_procedure;
            m_arity = 1;
            m_doc = "insert rows";
          };
        (* --- update procedure --- *)
        let update_name = fn ("update" ^ tname) in
        Xqse.Session.register_procedure t.sess update_name 1
          ~params:[ (Qname.local "rows", Some (elem_seqtype tname)) ]
          (invalidating t [ (db_name, tname) ] (fun args ->
            let rows = one_table_arg ("update" ^ tname) args in
            List.iter
              (fun node ->
                let pairs = Rowxml.xml_to_pairs tbl node in
                let where =
                  try Rowxml.pk_pred_of_xml tbl node
                  with Failure msg ->
                    Item.raise_error (Qname.make ~uri:ns "UpdateError") msg
                in
                let set =
                  List.filter
                    (fun (c, _) -> not (List.mem c schema.R.Table.primary_key))
                    pairs
                in
                ignore
                  (guarded t ~source:db_name
                     ~on_native:(function
                       | R.Database.Db_error msg ->
                         Item.raise_error (Qname.make ~uri:ns "UpdateError") msg
                       | e -> raise e)
                     (fun () ->
                       R.Database.exec db
                         (R.Database.Update { table = tname; set; where }))))
              rows;
            []));
        Data_service.add_method svc
          {
            Data_service.m_name = update_name;
            m_kind = Data_service.Update_procedure;
            m_arity = 1;
            m_doc = "update rows by primary key";
          };
        (* --- delete procedure --- *)
        let delete_name = fn ("delete" ^ tname) in
        Xqse.Session.register_procedure t.sess delete_name 1
          ~params:[ (Qname.local "rows", Some (elem_seqtype tname)) ]
          (invalidating t [ (db_name, tname) ] (fun args ->
            let rows = one_table_arg ("delete" ^ tname) args in
            List.iter
              (fun node ->
                let where =
                  try Rowxml.pk_pred_of_xml tbl node
                  with Failure msg ->
                    Item.raise_error (Qname.make ~uri:ns "DeleteError") msg
                in
                ignore
                  (guarded t ~source:db_name
                     ~on_native:(function
                       | R.Database.Db_error msg ->
                         Item.raise_error (Qname.make ~uri:ns "DeleteError") msg
                       | e -> raise e)
                     (fun () ->
                       R.Database.exec db
                         (R.Database.Delete { table = tname; where }))))
              rows;
            []));
        Data_service.add_method svc
          {
            Data_service.m_name = delete_name;
            m_kind = Data_service.Delete_procedure;
            m_arity = 1;
            m_doc = "delete rows by primary key";
          };
        svc)
      (R.Database.tables db)
  in
  (* navigation functions from foreign keys (both directions) *)
  List.iter
    (fun tbl ->
      let schema = R.Table.schema tbl in
      let child_name = schema.R.Table.tbl_name in
      List.iter
        (fun (fk : R.Table.foreign_key) ->
          let parent_name = fk.R.Table.fk_ref_table in
          let parent_tbl = R.Database.table db parent_name in
          (* navigation functions probe the child by its FK columns, so
             introspection builds a hash index over them *)
          R.Table.create_index tbl fk.R.Table.fk_columns;
          let parent_svc =
            List.find
              (fun s -> s.Data_service.ds_name = db_name ^ "/" ^ parent_name)
              new_services
          and child_svc =
            List.find
              (fun s -> s.Data_service.ds_name = db_name ^ "/" ^ child_name)
              new_services
          in
          (* parent -> children:  cus:getORDER($customer) *)
          let nav_name =
            Qname.make ~uri:(table_ns db_name parent_name) ("get" ^ child_name)
          in
          Xqse.Session.register_function_cursor t.sess nav_name 1
            ~purity:source_read_purity (fun args ->
              match args with
              | [ [ Item.Node parent_row ] ] ->
                let pred =
                  R.Pred.conj
                    (List.map2
                       (fun ccol pcol ->
                         let pairs = Rowxml.xml_to_pairs parent_tbl parent_row in
                         match List.assoc_opt pcol pairs with
                         | Some v -> R.Pred.eq ccol v
                         | None -> R.Pred.False)
                       fk.R.Table.fk_columns fk.R.Table.fk_ref_columns)
                in
                guarded_read_cur t ~source:db_name (fun () ->
                    R.Database.read_check db;
                    rows_to_cursor tbl (R.Table.select_cursor tbl pred))
              | _ ->
                Item.type_error
                  (Printf.sprintf "%s expects one %s row"
                     (Qname.to_string nav_name) parent_name));
          Hashtbl.replace t.source_fns (nav_name.Qname.uri, nav_name.Qname.local)
            (Lineage.Nav_fn
               {
                 db = db_name;
                 table = child_name;
                 parent_table = parent_name;
                 link = List.combine fk.R.Table.fk_columns fk.R.Table.fk_ref_columns;
               });
          Data_service.add_method parent_svc
            {
              Data_service.m_name = nav_name;
              m_kind = Data_service.Navigation_function (db_name ^ "/" ^ child_name);
              m_arity = 1;
              m_doc =
                Printf.sprintf "rows of %s referencing this %s row" child_name
                  parent_name;
            };
          (* child -> parent:  ord:getCUSTOMER($order) *)
          let nav_back =
            Qname.make ~uri:(table_ns db_name child_name) ("get" ^ parent_name)
          in
          Xqse.Session.register_function_cursor t.sess nav_back 1
            ~purity:source_read_purity (fun args ->
              match args with
              | [ [ Item.Node child_row ] ] ->
                let pairs = Rowxml.xml_to_pairs tbl child_row in
                let pred =
                  R.Pred.conj
                    (List.map2
                       (fun ccol pcol ->
                         match List.assoc_opt ccol pairs with
                         | Some v -> R.Pred.eq pcol v
                         | None -> R.Pred.False)
                       fk.R.Table.fk_columns fk.R.Table.fk_ref_columns)
                in
                guarded_read_cur t ~source:db_name (fun () ->
                    R.Database.read_check db;
                    rows_to_cursor parent_tbl (R.Table.select_cursor parent_tbl pred))
              | _ ->
                Item.type_error
                  (Printf.sprintf "%s expects one %s row"
                     (Qname.to_string nav_back) child_name));
          Hashtbl.replace t.source_fns (nav_back.Qname.uri, nav_back.Qname.local)
            (Lineage.Nav_fn
               {
                 db = db_name;
                 table = parent_name;
                 parent_table = child_name;
                 link = List.combine fk.R.Table.fk_ref_columns fk.R.Table.fk_columns;
               });
          Data_service.add_method child_svc
            {
              Data_service.m_name = nav_back;
              m_kind = Data_service.Navigation_function (db_name ^ "/" ^ parent_name);
              m_arity = 1;
              m_doc =
                Printf.sprintf "the %s row this %s row references" parent_name
                  child_name;
            })
        schema.R.Table.foreign_keys)
    (R.Database.tables db);
  t.svcs <- t.svcs @ new_services;
  new_services

(* ------------------------------------------------------------------ *)
(* Web-service introspection                                           *)
(* ------------------------------------------------------------------ *)

let register_web_service t ws =
  Webservice.set_instr ws (instr t);
  Resilience.Control.attach t.resil (Webservice.faults ws);
  let ns = Webservice.namespace ws in
  let ws_name = Webservice.name ws in
  let svc =
    Data_service.make ~name:ws_name ~namespace:ns
      ~kind:Data_service.Library
      ~origin:(Data_service.Physical_webservice { service = ws_name })
  in
  List.iter
    (fun (op : Webservice.operation) ->
      let fname = Qname.make ~uri:ns op.Webservice.op_name in
      Xqse.Session.register_function t.sess fname 1 ~purity:source_read_purity
        (fun args ->
          match args with
          | [ [ Item.Node request ] ] ->
            degrade_on_error t ~source:ws_name (fun () ->
                guarded t ~source:ws_name
                  ~on_native:(function
                    | Webservice.Fault { service; operation; message } ->
                      Item.raise_error
                        (Qname.make ~uri:ns "Fault")
                        (Printf.sprintf "%s.%s: %s" service operation message)
                    | e -> raise e)
                  (fun () ->
                    [
                      Item.Node
                        (Webservice.invoke ws op.Webservice.op_name request);
                    ]))
          | _ ->
            Item.type_error
              (Printf.sprintf "%s expects one request element"
                 (Qname.to_string fname)));
      Data_service.add_method svc
        {
          Data_service.m_name = fname;
          m_kind = Data_service.Library_function;
          m_arity = 1;
          m_doc = op.Webservice.op_doc;
        })
    (Webservice.operations ws);
  t.svcs <- t.svcs @ [ svc ];
  svc

(* ------------------------------------------------------------------ *)
(* Logical services                                                    *)
(* ------------------------------------------------------------------ *)

let rec lineage_of t svc =
  let name = svc.Data_service.ds_name in
  match Hashtbl.find_opt t.lineage_cache name with
  | Some r -> r
  | None when Hashtbl.mem t.lineage_in_progress name ->
    Error "recursive data-service composition"
  | None ->
    Hashtbl.replace t.lineage_in_progress name ();
    let result =
      match svc.Data_service.ds_primary_read with
      | None -> Error "the data service has no primary read function"
      | Some read_fn -> (
        match svc.Data_service.ds_origin with
        | Data_service.Physical_relational { db; table } ->
          (* physical services are their own lineage *)
          let tbl = lookup_table t ~db ~table in
          let schema = R.Table.schema tbl in
          Ok
            {
              Lineage.b_row_elem = table;
              b_db = db;
              b_table = table;
              b_fields =
                List.map
                  (fun (c : R.Table.column) ->
                    {
                      Lineage.f_elem = c.R.Table.col_name;
                      f_column = c.R.Table.col_name;
                    })
                  schema.R.Table.columns;
              b_opaque = [];
              b_children = [];
              b_layout =
                List.map
                  (fun (c : R.Table.column) -> c.R.Table.col_name)
                  schema.R.Table.columns;
            }
        | Data_service.Physical_webservice _ ->
          Error "web-service data services are not updatable via lineage"
        | Data_service.Logical -> (
          match Hashtbl.find_opt t.read_sources name with
          | None -> Error "the service has no stored read source"
          | Some source -> (
            (* re-parse to get the un-optimized AST of the primary read *)
            let st =
              let base = Xquery.Engine.static (Xqse.Session.engine t.sess) in
              {
                Xquery.Context.namespaces = base.Xquery.Context.namespaces;
                default_elem_ns = base.Xquery.Context.default_elem_ns;
                default_fun_ns = base.Xquery.Context.default_fun_ns;
              }
            in
            let prog = Xqse.Parse.parse_program st source in
            match
              List.find_opt
                (fun (f : Xquery.Ast.function_decl) ->
                  Qname.equal f.Xquery.Ast.fd_name read_fn)
                prog.Xqse.Stmt.prog_functions
            with
            | None ->
              Error
                (Printf.sprintf "primary read function %s not found in source"
                   (Qname.to_string read_fn))
            | Some decl -> (
              match decl.Xquery.Ast.fd_body with
              | None -> Error "primary read function is external"
              | Some body ->
                Lineage.analyze ~resolve:(resolve_source_fn t name) body))))
    in
    Hashtbl.remove t.lineage_in_progress name;
    Hashtbl.replace t.lineage_cache name result;
    result

(* physical read/navigation functions, or the primary read function of
   another logical service (composition) *)
and resolve_source_fn t current_name (q : Qname.t) =
  match Hashtbl.find_opt t.source_fns (q.Qname.uri, q.Qname.local) with
  | Some sf -> Some sf
  | None -> (
    let owner =
      List.find_opt
        (fun s ->
          s.Data_service.ds_origin = Data_service.Logical
          && s.Data_service.ds_name <> current_name
          &&
          match s.Data_service.ds_primary_read with
          | Some pr -> Qname.equal pr q
          | None -> false)
        t.svcs
    in
    match owner with
    | Some inner -> (
      match lineage_of t inner with
      | Ok blk -> Some (Lineage.Logical_fn blk)
      | Error _ -> None)
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Result-cache admission metadata                                     *)
(* ------------------------------------------------------------------ *)

(* Is a call to (name, arity) cacheable, and over which tables? The
   admission policy, in decreasing specificity:

   - physical reads and navigations (the [source_fns] table) are pure by
     construction and footprint exactly the table they scan;
   - a logical service's [Read_function] methods qualify when the purity
     analysis finds the function effect-free *and* the service's lineage
     is analyzable — the footprint is every table the lineage touches;
   - everything else (CUD procedures, library/web-service functions,
     catalog and resilience introspection, user helpers) is refused.

   Web-service operations are deliberately uncacheable on their own: a
   ws response has no table footprint, so nothing would ever evict it.
   They still appear *inside* cached logical reads — coherently, because
   the simulated services are deterministic and a degraded response
   blocks admission via the epoch guard. *)
let footprint_of t (q : Qname.t) arity =
  let key = (q.Qname.uri, q.Qname.local, arity) in
  match Hashtbl.find_opt t.cacheable_memo key with
  | Some r -> r
  | None ->
    let result =
      match Hashtbl.find_opt t.source_fns (q.Qname.uri, q.Qname.local) with
      | Some (Lineage.Read_fn { db; table }) -> Some [ (db, table) ]
      | Some (Lineage.Nav_fn { db; table; _ }) -> Some [ (db, table) ]
      | Some (Lineage.Logical_fn blk) -> Some (lineage_tables blk)
      | None -> (
        let owner =
          List.find_opt
            (fun (s : Data_service.t) ->
              s.Data_service.ds_namespace = q.Qname.uri
              && List.exists
                   (fun (m : Data_service.ds_method) ->
                     m.Data_service.m_name.Qname.local = q.Qname.local
                     && m.Data_service.m_kind = Data_service.Read_function)
                   s.Data_service.ds_methods)
            t.svcs
        in
        match owner with
        | None -> None
        | Some svc -> (
          let registry =
            Xquery.Engine.registry (Xqse.Session.engine t.sess)
          in
          let env = Xquery.Purity.env_for ~registry [] in
          match Xquery.Purity.lookup env q arity with
          | Some v when not v.Xquery.Purity.effects -> (
            match lineage_of t svc with
            | Ok blk -> (
              match lineage_tables blk with [] -> None | fp -> Some fp)
            | Error _ -> None)
          | _ -> None))
    in
    Hashtbl.replace t.cacheable_memo key result;
    result

let enable_result_cache ?cap t =
  match t.ds_cache with
  | Some h -> h
  | None ->
    Hashtbl.reset t.cacheable_memo;
    let h =
      Cache.create ?cap
        {
          Cache.m_footprint = (fun q arity -> footprint_of t q arity);
          m_epoch =
            (fun () ->
              List.length (Resilience.Control.degradations t.resil));
          m_version =
            (fun (db, table) ->
              (* the caller's read view (ambient snapshot when pinned,
                 else published head, -1 for an uncommitted working
                 store): the cache keys entries by it, so a reader on
                 an older snapshot never shares an entry with one at
                 head — and admission re-reads it to notice a publish
                 that landed while the result was being computed *)
              match Hashtbl.find_opt t.dbs db with
              | None -> -1
              | Some d -> (
                match R.Database.table d table with
                | tbl -> R.Table.view_version tbl
                | exception _ -> -1));
        }
    in
    t.ds_cache <- Some h;
    Xqse.Session.set_result_cache t.sess (Some h);
    h

let disable_result_cache t =
  t.ds_cache <- None;
  Xqse.Session.set_result_cache t.sess None

let result_cache t = t.ds_cache

let rec create_entity_service t ~name ~namespace ~shape ~methods ?primary_read
    ?(dependencies = []) ?(generate_cud = true) source =
  Xqse.Session.load_library t.sess source;
  let svc =
    Data_service.make ~name ~namespace
      ~kind:(Data_service.Entity { shape })
      ~origin:Data_service.Logical
  in
  List.iter
    (fun (local, kind) ->
      Data_service.add_method svc
        {
          Data_service.m_name = Qname.make ~uri:namespace local;
          m_kind = kind;
          m_arity = 0;
          m_doc = "";
        })
    methods;
  (match primary_read with
  | Some local ->
    svc.Data_service.ds_primary_read <- Some (Qname.make ~uri:namespace local)
  | None -> ());
  svc.Data_service.ds_dependencies <- dependencies;
  Hashtbl.replace t.read_sources name source;
  t.svcs <- t.svcs @ [ svc ];
  if generate_cud then generate_cud_methods t svc;
  svc

(* Auto-generate create/update/delete methods for a logical service
   whose primary read lineage is analyzable (paper III.D.1). Silently
   skipped when the lineage cannot be reverse-engineered. *)
and generate_cud_methods t svc =
  match lineage_of t svc with
  | Error _ -> ()
  | Ok lineage ->
    let ns = svc.Data_service.ds_namespace in
    let shape_local = lineage.Lineage.b_row_elem in
    let lookup = fun ~db ~table -> lookup_table t ~db ~table in
    let instance_arg what args =
      match args with
      | [ seq ] -> Item.nodes_only seq
      | _ -> Item.type_error (what ^ ": expected one argument")
    in
    let run_plan what plan =
      let outcome = Decompose.execute ~db_of:(fun n -> database t n) plan in
      if not outcome.Decompose.committed then
        Item.raise_error
          (Qname.make ~uri:ns (what ^ "Error"))
          (Option.value ~default:"update aborted" outcome.Decompose.reason)
      else invalidate_cache_tables t (plan_tables plan)
    in
    let key_elem node =
      (* <Shape_KEY> with the primary-key leaf elements of the root row *)
      let tbl = lookup ~db:lineage.Lineage.b_db ~table:lineage.Lineage.b_table in
      let pks = (R.Table.schema tbl).R.Table.primary_key in
      let leaves =
        List.filter_map
          (fun col ->
            List.find_opt
              (fun (f : Lineage.field) -> f.Lineage.f_column = col)
              lineage.Lineage.b_fields
            |> Option.map (fun (f : Lineage.field) ->
                   let v =
                     match
                       List.find_opt
                         (fun c ->
                           match Node.name c with
                           | Some q -> q.Qname.local = f.Lineage.f_elem
                           | None -> false)
                         (List.filter
                            (fun c -> Node.kind c = Node.Element)
                            (Node.children node))
                     with
                     | Some el -> Node.string_value el
                     | None -> ""
                   in
                   Node.element (Qname.local f.Lineage.f_elem) [ Node.text v ]))
          pks
      in
      Node.element (Qname.make ~uri:ns (shape_local ^ "_KEY")) leaves
    in
    let create_name = Qname.make ~uri:ns ("create" ^ shape_local) in
    Xqse.Session.register_procedure t.sess create_name 1 (fun args ->
        let objs = instance_arg ("create" ^ shape_local) args in
        List.map
          (fun node ->
            run_plan "Create"
              (Decompose.plan_create_object ~lookup_table:lookup ~lineage node);
            Item.Node (key_elem node))
          objs);
    Data_service.add_method svc
      {
        Data_service.m_name = create_name;
        m_kind = Data_service.Create_procedure;
        m_arity = 1;
        m_doc = "auto-generated from the primary read lineage";
      };
    let update_name = Qname.make ~uri:ns ("update" ^ shape_local) in
    Xqse.Session.register_procedure t.sess update_name 1 (fun args ->
        let objs = instance_arg ("update" ^ shape_local) args in
        List.iter
          (fun node ->
            run_plan "Update"
              (Decompose.plan_replace_object ~lookup_table:lookup ~lineage node))
          objs;
        []);
    Data_service.add_method svc
      {
        Data_service.m_name = update_name;
        m_kind = Data_service.Update_procedure;
        m_arity = 1;
        m_doc = "auto-generated from the primary read lineage";
      };
    let delete_name = Qname.make ~uri:ns ("delete" ^ shape_local) in
    Xqse.Session.register_procedure t.sess delete_name 1 (fun args ->
        let objs = instance_arg ("delete" ^ shape_local) args in
        List.iter
          (fun node ->
            run_plan "Delete"
              (Decompose.plan_delete_object ~lookup_table:lookup
                 ~policy:Occ.Updated_values ~lineage node))
          objs;
        []);
    Data_service.add_method svc
      {
        Data_service.m_name = delete_name;
        m_kind = Data_service.Delete_procedure;
        m_arity = 1;
        m_doc = "auto-generated from the primary read lineage";
      };
    (* navigation functions for each nested block: from one service
       instance to the *current* related source rows (paper II.A:
       "traversal from one instance object ... to one or more instances
       from a related data service") *)
    List.iter
      (fun (c : Lineage.child) ->
        let child_blk = c.Lineage.c_block in
        let nav_name =
          Qname.make ~uri:ns ("get" ^ child_blk.Lineage.b_row_elem)
        in
        let field_value obj elem =
          List.find_map
            (fun ch ->
              match Node.name ch with
              | Some q when q.Qname.local = elem && Node.kind ch = Node.Element
                -> Some (Node.string_value ch)
              | _ -> None)
            (Node.children obj)
        in
        Xqse.Session.register_function t.sess nav_name 1
          ~purity:source_read_purity (fun args ->
            match args with
            | [ [ Item.Node obj ] ] ->
              let tbl =
                lookup ~db:child_blk.Lineage.b_db
                  ~table:child_blk.Lineage.b_table
              in
              let cols = (R.Table.schema tbl).R.Table.columns in
              let pred =
                R.Pred.conj
                  (List.map
                     (fun (ccol, pcol) ->
                       (* the parent column value is read from the
                          instance through the root block's fields *)
                       let pelem =
                         match
                           List.find_opt
                             (fun (f : Lineage.field) ->
                               f.Lineage.f_column = pcol)
                             lineage.Lineage.b_fields
                         with
                         | Some f -> f.Lineage.f_elem
                         | None -> pcol
                       in
                       match field_value obj pelem with
                       | Some s -> (
                         match
                           List.find_opt
                             (fun (col : R.Table.column) ->
                               col.R.Table.col_name = ccol)
                             cols
                         with
                         | Some col ->
                           R.Pred.eq ccol
                             (R.Value.of_string col.R.Table.col_type s)
                         | None -> R.Pred.False)
                       | None -> R.Pred.False)
                     c.Lineage.c_link)
              in
              List.map
                (fun row -> Item.Node (Rowxml.row_to_xml tbl row))
                (R.Table.select tbl pred)
            | _ ->
              Item.type_error
                (Printf.sprintf "%s expects one %s instance"
                   (Qname.to_string nav_name) shape_local));
        Data_service.add_method svc
          {
            Data_service.m_name = nav_name;
            m_kind =
              Data_service.Navigation_function
                (child_blk.Lineage.b_db ^ "/" ^ child_blk.Lineage.b_table);
            m_arity = 1;
            m_doc = "auto-generated navigation to current source rows";
          })
      lineage.Lineage.b_children

(* ------------------------------------------------------------------ *)
(* Client API                                                          *)
(* ------------------------------------------------------------------ *)

let call t name args = Xqse.Session.call t.sess name args

let get t svc ~meth args =
  let name = Qname.make ~uri:svc.Data_service.ds_namespace meth in
  let result = call t name args in
  Sdo.create (Item.nodes_only result)

let set_override t svc o =
  match o with
  | Some f -> Hashtbl.replace t.overrides svc.Data_service.ds_name f
  | None -> Hashtbl.remove t.overrides svc.Data_service.ds_name

let default_submit t svc policy dg =
  Instr.span (instr t) "submit"
    ~attrs:[ ("service", svc.Data_service.ds_name) ]
  @@ fun () ->
  Instr.bump (instr t) Instr.K.sdo_submits;
  (* a submit whose request budget already died fails before planning,
     the wire round-trip, or any statement — cheap refusal, and the
     only deadline check a submit ever makes: once execution reaches
     XA prepare the commit path runs exempt (never kill a write
     mid-commit) *)
  (match Resilience.Deadline.current () with
  | Some d when Resilience.Deadline.expired d ->
    raise_resil_error ~source:svc.Data_service.ds_name
      Resilience.Control.Deadline_exceeded
      (Printf.sprintf "request budget of %.0fms exhausted before submit"
         (Resilience.Deadline.budget_ms d))
  | None | Some _ -> ());
  (* strict admission: a submit is never served degraded. If any source
     this service depends on has an open breaker, fail now — before any
     statement runs anywhere — with the stable code. *)
  let strict source =
    try Resilience.Control.check_strict t.resil ~source
    with Resilience.Control.Error { source; code; message } ->
      Log.info (fun m ->
          m "submit %s rejected strictly: %s %s" svc.Data_service.ds_name
            source message);
      raise_resil_error ~source code message
  in
  let dep_source d =
    match String.index_opt d '/' with
    | Some i -> String.sub d 0 i
    | None -> d
  in
  List.iter strict
    (List.sort_uniq compare
       (List.map dep_source svc.Data_service.ds_dependencies));
  (* wire round trip: client serializes, server parses (Figure 4) *)
  let dg = Sdo.parse (Sdo.serialize dg) in
  Log.debug (fun m ->
      m "submit %s: %d change(s), policy %s" svc.Data_service.ds_name
        (List.length (Sdo.changes dg))
        (Occ.to_string policy));
  match lineage_of t svc with
  | Error msg ->
    Log.warn (fun m ->
        m "submit %s rejected: no usable lineage (%s)"
          svc.Data_service.ds_name msg);
    raise (Decompose.Not_updatable ("no usable lineage: " ^ msg))
  | Ok lineage ->
    let plan =
      Decompose.plan
        ~lookup_table:(fun ~db ~table -> lookup_table t ~db ~table)
        ~policy ~lineage dg
    in
    (* ... and the databases the plan actually targets, which may be a
       subset or superset of the declared dependencies *)
    List.iter strict
      (List.sort_uniq compare
         (List.map (fun s -> s.Decompose.step_db) plan));
    let sql = Decompose.plan_to_strings plan in
    Instr.bump (instr t) ~n:(List.length sql) Instr.K.sql_generated;
    List.iter (fun stmt -> Log.debug (fun m -> m "plan: %s" stmt)) sql;
    let outcome = Decompose.execute ~db_of:(fun n -> database t n) plan in
    Instr.bump (instr t) ~n:outcome.Decompose.statements Instr.K.sdo_statements;
    (* evict after the commit, never before: a read racing the submit
       may cache the pre-image until the data actually changes, but once
       the commit lands the write set's entries must be gone *)
    if outcome.Decompose.committed then
      invalidate_cache_tables t (plan_tables plan);
    (match outcome.Decompose.reason with
    | Some reason when not outcome.Decompose.committed ->
      Log.info (fun m ->
          m "submit %s aborted: %s" svc.Data_service.ds_name reason)
    | _ ->
      Log.debug (fun m ->
          m "submit %s committed %d statement(s)" svc.Data_service.ds_name
            outcome.Decompose.statements));
    {
      sr_committed = outcome.Decompose.committed;
      sr_statements = outcome.Decompose.statements;
      sr_sql = sql;
      sr_reason = outcome.Decompose.reason;
    }

let validate_against_shape svc dg =
  match Data_service.shape svc with
  | None -> ()
  | Some decl ->
    let schema = Schema.make ~target_ns:svc.Data_service.ds_namespace [ decl ] in
    List.iter
      (fun root ->
        match Schema.validate schema root with
        | Ok () -> ()
        | Error violations ->
          raise
            (Decompose.Not_updatable
               (Printf.sprintf "submitted object violates the service shape: %s"
                  (String.concat "; "
                     (List.map
                        (fun v -> v.Schema.path ^ ": " ^ v.Schema.message)
                        violations)))))
      (Sdo.roots dg)

let submit t svc ?(policy = Occ.Updated_values) ?(validate = false) dg =
  if validate then validate_against_shape svc dg;
  match Hashtbl.find_opt t.overrides svc.Data_service.ds_name with
  | Some f ->
    let r =
      f t
        { ur_service = svc; ur_datagraph = dg; ur_policy = policy }
        ~default:(fun () -> default_submit t svc policy dg)
    in
    (* an override's write set is opaque — its writes through registered
       CUD procedures self-invalidate, but a custom closure may have
       touched anything: evict the service's whole lineage footprint,
       or drop everything when the lineage is unknown *)
    if r.sr_committed then begin
      match lineage_of t svc with
      | Ok blk -> invalidate_cache_tables t (lineage_tables blk)
      | Error _ -> flush_cache t
    end;
    r
  | None -> default_submit t svc policy dg

(* explain: per-method optimizer report — re-parse the service source,
   optimize the method body, report the pass counters and the rewritten
   query text *)
let explain t svc ~meth =
  match Hashtbl.find_opt t.read_sources svc.Data_service.ds_name with
  | None -> Error "the service has no stored read source"
  | Some source -> (
    let st =
      let base = Xquery.Engine.static (Xqse.Session.engine t.sess) in
      {
        Xquery.Context.namespaces = base.Xquery.Context.namespaces;
        default_elem_ns = base.Xquery.Context.default_elem_ns;
        default_fun_ns = base.Xquery.Context.default_fun_ns;
      }
    in
    let prog = Xqse.Parse.parse_program st source in
    match
      List.find_opt
        (fun (f : Xquery.Ast.function_decl) ->
          f.Xquery.Ast.fd_name.Qname.local = meth)
        prog.Xqse.Stmt.prog_functions
    with
    | None -> Error (Printf.sprintf "method %s not found in the source" meth)
    | Some decl -> (
      match decl.Xquery.Ast.fd_body with
      | None -> Error "the method is external"
      | Some body ->
        let optimized, stats = Xquery.Optimizer.optimize_with_stats body in
        Ok
          (Printf.sprintf
             "method %s: folded=%d inlined=%d joins=%d pushed=%d\n%s" meth
             stats.Xquery.Optimizer.folded stats.Xquery.Optimizer.inlined
             stats.Xquery.Optimizer.joins stats.Xquery.Optimizer.pushed
             (Xquery.Pretty.expr optimized))))

(* infer the service shape (its XML Schema element declaration) from the
   primary read lineage — "introspect and reverse-engineer" (III.D.1) *)
let infer_shape t svc =
  match lineage_of t svc with
  | Error m -> Error m
  | Ok lineage ->
    let col_type blk col =
      let tbl = lookup_table t ~db:blk.Lineage.b_db ~table:blk.Lineage.b_table in
      match
        List.find_opt
          (fun (c : R.Table.column) -> c.R.Table.col_name = col)
          (R.Table.schema tbl).R.Table.columns
      with
      | Some c ->
        (Rowxml.simple_type_of_col c.R.Table.col_type, c.R.Table.nullable)
      | None -> (Qname.xs "string", true)
    in
    let rec type_of_block blk =
      (* one particle per layout entry, preserving constructed order *)
      let particles =
        List.filter_map
          (fun name ->
            if name = "(anonymous)" then None
            else
              match Lineage.find_field blk name with
              | Some f ->
                let ty, nullable = col_type blk f.Lineage.f_column in
                Some
                  (Schema.particle
                     ~min:(if nullable then 0 else 1)
                     (Qname.local name) (Schema.simple ty))
              | None -> (
                match Lineage.find_child blk name with
                | Some c -> (
                  let rows =
                    Schema.particle ~min:0 ~max:None
                      (Qname.local c.Lineage.c_block.Lineage.b_row_elem)
                      (type_of_block c.Lineage.c_block)
                  in
                  match c.Lineage.c_wrapper with
                  | Some w ->
                    Some (Schema.particle (Qname.local w) (Schema.complex [ rows ]))
                  | None -> Some rows)
                | None ->
                  Some
                    (Schema.particle ~min:0 (Qname.local name)
                       (Schema.simple (Qname.xs "string")))))
          blk.Lineage.b_layout
      in
      Schema.complex particles
    in
    Ok
      {
        Schema.name =
          Qname.make ~uri:svc.Data_service.ds_namespace
            lineage.Lineage.b_row_elem;
        type_def = type_of_block lineage;
      }

let set_xqse_override t svc proc_name =
  set_override t svc
    (Some
       (fun t req ~default:_ ->
         (* hand the wire-form datagraph to the XQSE procedure; it takes
            over update processing entirely (the ALDSP 2.5 Java override
            pattern, now writable in XQSE — the paper's motivation) *)
         let wire = Sdo.serialize req.ur_datagraph in
         let doc = Xml_parse.parse wire in
         let root =
           match
             List.find_opt
               (fun c -> Node.kind c = Node.Element)
               (Node.children doc)
           with
           | Some el -> el
           | None -> failwith "empty datagraph"
         in
         let result = call t proc_name [ [ Item.Node root ] ] in
         {
           sr_committed = true;
           sr_statements = List.length result;
           sr_sql = [];
           sr_reason = None;
         }))
