(* Pull-based lazy sequences.

   A cursor is a single-pass producer of items with three observable
   operations: [next] (pull one item), [close] (release, idempotent)
   and [abandon] (stop consuming before exhaustion).

   The contract that makes streaming evaluation semantics-preserving:

   - Full consumption of a cursor yields exactly the items, effects and
     raised errors, in exactly the order, that eager evaluation of the
     producing expression would have yielded.
   - [pure] marks a cursor whose *remaining pulls* can neither raise
     nor perform an observable effect (node construction local to the
     pulled items is allowed — a never-returned node is unobservable).
   - [abandon] therefore skips the remainder only when [pure] holds;
     otherwise it drains the cursor, letting any pending effect run and
     any pending error propagate, exactly as eager evaluation would
     have. Consumers that stop early (fn:exists, fn:head, EBV,
     positional [1], XQSE iterate+break) must go through [abandon],
     never a bare [close], so equivalence with the materializing
     evaluator holds by construction.

   Instrumentation: producer cursors built with [make ~instr] bump
   [stream.pulled] per item pulled and [stream.early_exits] when an
   abandon actually skips work. Derived cursors (map/filter/chain/
   of_list) carry a disabled handle so wrapped pulls are not counted
   twice; their cleanup propagates the abandon to the producer. *)

(* [Draining] is the window during which [abandon] is flushing an impure
   cursor's deferred effects: any reentrant or repeated [next]/[close]/
   [abandon] during (or after) that window is a no-op, so a second
   abandon can never re-run effects or double-bump the counters, and the
   cursor lands in [Done] exactly once even when the drain raises. *)
type state = Open | Draining | Done

type 'a t = {
  pull : unit -> 'a option;
  pure : bool;
  instr : Instr.t;
  cleanup : unit -> unit;
  mutable state : state;
}

let make ?(pure = false) ?(instr = Instr.disabled) ?(cleanup = fun () -> ())
    pull =
  { pull; pure; instr; cleanup; state = Open }

let is_pure c = c.pure

let close c =
  if c.state = Open then begin
    c.state <- Done;
    c.cleanup ()
  end

let next c =
  match c.state with
  | Done | Draining -> None
  | Open -> (
    match c.pull () with
    | Some _ as r ->
      Instr.bump c.instr Instr.K.stream_pulled;
      r
    | None ->
      close c;
      None)

let abandon c =
  match c.state with
  | Done | Draining -> ()
  | Open ->
    if c.pure then begin
      Instr.bump c.instr Instr.K.stream_early_exits;
      close c
    end
    else begin
      c.state <- Draining;
      let rec flush () =
        match c.pull () with
        | Some _ ->
          Instr.bump c.instr Instr.K.stream_pulled;
          flush ()
        | None -> ()
      in
      (try flush ()
       with e ->
         c.state <- Done;
         (try c.cleanup () with _ -> ());
         raise e);
      c.state <- Done;
      c.cleanup ()
    end

let empty () = make ~pure:true (fun () -> None)

let of_list items =
  let rest = ref items in
  make ~pure:true (fun () ->
      match !rest with
      | [] -> None
      | x :: tl ->
        rest := tl;
        Some x)

let singleton x = of_list [ x ]

let to_list ?(instr = Instr.disabled) c =
  let rec go acc n =
    match next c with Some x -> go (x :: acc) (n + 1) | None -> (List.rev acc, n)
  in
  let items, n = go [] 0 in
  if n > 0 then Instr.bump instr ~n Instr.K.stream_materialized;
  items

(* [total] asserts that [f] neither raises nor has observable effects,
   so purity of the source carries over to the mapped cursor. *)
let map ?(total = false) f c =
  make ~pure:(total && c.pure)
    ~cleanup:(fun () -> abandon c)
    (fun () -> Option.map f (next c))

let filter ?(total = false) p c =
  let rec pull () =
    match next c with
    | None -> None
    | Some x -> if p x then Some x else pull ()
  in
  make ~pure:(total && c.pure) ~cleanup:(fun () -> abandon c) pull

(* Sequential concatenation of lazily-opened sub-cursors. The caller
   vouches for [pure]: when set, every sub-cursor the thunks can return
   must itself be pure and the thunks must be total. An impure chain is
   drained by the generic [abandon] via [next], which naturally opens
   and drains the not-yet-started components in order. *)
let chain ?(pure = false) thunks =
  let current = ref None and rest = ref thunks in
  let rec pull () =
    match !current with
    | Some c -> (
      match next c with
      | Some _ as r -> r
      | None ->
        current := None;
        pull ())
    | None -> (
      match !rest with
      | [] -> None
      | t :: tl ->
        rest := tl;
        current := Some (t ());
        pull ())
  in
  make ~pure
    ~cleanup:(fun () ->
      match !current with Some c -> abandon c | None -> ())
    pull
