type t = Atomic of Atomic.t | Node of Node.t
type seq = t list

exception Error of { code : Qname.t; message : string; items : seq }

let raise_error ?(items = []) code message =
  raise (Error { code; message; items })

let type_error msg = raise_error (Qname.err "XPTY0004") msg
let of_atom a = [ Atomic a ]
let of_node n = [ Node n ]
let str s = [ Atomic (Atomic.String s) ]
let int i = [ Atomic (Atomic.Integer i) ]

(* shared: boolean results are produced on every comparison, and items
   are immutable, so both singletons can be preallocated *)
let true_seq = [ Atomic (Atomic.Boolean true) ]
let false_seq = [ Atomic (Atomic.Boolean false) ]
let bool b = if b then true_seq else false_seq
let empty = []

let string_value = function
  | Atomic a -> Atomic.to_string a
  | Node n -> Node.string_value n

let atomize seq =
  List.concat_map
    (function Atomic a -> [ a ] | Node n -> Node.typed_value n)
    seq

let effective_boolean_value = function
  | [] -> false
  | Node _ :: _ -> true
  | [ Atomic (Atomic.Boolean b) ] -> b
  | [ Atomic (Atomic.String s | Atomic.Untyped s | Atomic.AnyUri s) ] ->
    s <> ""
  | [ Atomic (Atomic.Integer i) ] -> i <> 0
  | [ Atomic (Atomic.Decimal f) ] -> f <> 0.
  | [ Atomic (Atomic.Double f) ] -> not (f = 0. || Float.is_nan f)
  | _ ->
    raise_error (Qname.err "FORG0006")
      "invalid argument for effective boolean value"

let one_atom seq =
  match atomize seq with
  | [ a ] -> a
  | [] -> type_error "expected exactly one atomic value, got empty sequence"
  | _ -> type_error "expected exactly one atomic value, got more than one"

let one_atom_opt seq =
  match atomize seq with
  | [] -> None
  | [ a ] -> Some a
  | _ -> type_error "expected at most one atomic value"

let one_node = function
  | [ Node n ] -> n
  | [ Atomic _ ] -> type_error "expected a node, got an atomic value"
  | [] -> type_error "expected a node, got empty sequence"
  | _ -> type_error "expected a single node"

let nodes_only seq =
  List.map
    (function
      | Node n -> n
      | Atomic _ ->
        raise_error (Qname.err "XPTY0018")
          "path step result mixes nodes and atomic values")
    seq

let string_of_item = string_value

let doc_sort seq =
  let nodes = nodes_only seq in
  let sorted = List.stable_sort Node.doc_order nodes in
  let rec dedupe = function
    | a :: (b :: _ as rest) when Node.is_same a b -> dedupe rest
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  List.map (fun n -> Node n) (dedupe sorted)

let deep_equal s1 s2 =
  List.length s1 = List.length s2
  && List.for_all2
       (fun a b ->
         match (a, b) with
         | Atomic x, Atomic y -> Atomic.deep_equal x y
         | Node x, Node y -> Node.deep_equal x y
         | _ -> false)
       s1 s2

let pp ppf = function
  | Atomic a -> Atomic.pp ppf a
  | Node n -> Node.pp ppf n

let pp_seq ppf seq =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
    seq
