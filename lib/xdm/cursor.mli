(** Pull-based lazy sequences — the streaming core's spine.

    Laws (see DESIGN.md §13): a cursor is single-pass; fully consuming
    it yields the same items, effects and errors, in the same order, as
    eager evaluation of its producer; {!abandon} skips the remainder
    only when the cursor is {!is_pure} (remaining pulls raise nothing
    and have no observable effect), otherwise it drains, so early-exit
    consumers are equivalent to materializing ones by construction. *)

type 'a t

val make :
  ?pure:bool ->
  ?instr:Instr.t ->
  ?cleanup:(unit -> unit) ->
  (unit -> 'a option) ->
  'a t
(** [make pull] wraps a producer. [pure] asserts remaining pulls are
    skippable (no errors, no observable effects); [instr] makes pulls
    bump [stream.pulled] and skipped abandons bump [stream.early_exits];
    [cleanup] runs once when the cursor closes (exhaustion, [close] or
    [abandon]) — derived cursors use it to propagate abandonment. *)

val is_pure : 'a t -> bool

val next : 'a t -> 'a option
(** Pull one item; [None] marks exhaustion and closes the cursor. *)

val close : 'a t -> unit
(** Release without draining. Idempotent. Consumers stopping early must
    use {!abandon} instead — a bare [close] on an impure cursor would
    skip observable work. *)

val abandon : 'a t -> unit
(** Stop consuming: skip the remainder if pure (bumping
    [stream.early_exits]), otherwise drain it — pending effects run and
    pending errors propagate exactly as eager evaluation would.
    Idempotent: a repeated or reentrant abandon (including abandon after
    [close], or abandon triggered from within the drain itself) is a
    no-op, so deferred effects run at most once and the laziness
    counters are bumped at most once per cursor. *)

val empty : unit -> 'a t
val of_list : 'a list -> 'a t
(** Always pure: the list is already materialized, pulls cannot fail. *)

val singleton : 'a -> 'a t

val to_list : ?instr:Instr.t -> 'a t -> 'a list
(** Drain into a list; bumps [stream.materialized] on [instr] by the
    number of items copied out. *)

val map : ?total:bool -> ('a -> 'b) -> 'a t -> 'b t
(** [total] asserts [f] neither raises nor has effects; only then does
    the source's purity carry over. *)

val filter : ?total:bool -> ('a -> bool) -> 'a t -> 'a t

val chain : ?pure:bool -> (unit -> 'a t) list -> 'a t
(** Sequential concatenation; each thunk is opened only when the
    previous sub-cursor is exhausted. [pure] is the caller's promise
    that every thunk is total and every sub-cursor pure. *)
