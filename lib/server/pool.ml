type kind = Read | Script | Submit

let kind_name = function
  | Read -> "read"
  | Script -> "script"
  | Submit -> "submit"

type job = {
  j_kind : kind;
  j_label : string;
  j_arrival_ms : float;
  j_run : Xqse.Session.t -> unit;
}

type latency = {
  l_p50 : float;
  l_p95 : float;
  l_p99 : float;
  l_max : float;
  l_mean : float;
}

type window = { w_from_ms : float; w_jobs : int; w_latency : latency }

type report = {
  r_workers : int;
  r_jobs : int;
  r_ok : int;
  r_errors : (string * string) list;
  r_wall_ms : float;
  r_qps : float;
  r_latency : latency;
  r_by_kind : (string * int) list;
  r_trajectory : window list;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (ceil (q /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let latency_of samples =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let mean =
    if n = 0 then 0. else Array.fold_left ( +. ) 0. sorted /. float_of_int n
  in
  {
    l_p50 = percentile sorted 50.;
    l_p95 = percentile sorted 95.;
    l_p99 = percentile sorted 99.;
    l_max = (if n = 0 then 0. else sorted.(n - 1));
    l_mean = mean;
  }

(* bucket open-loop latencies by scheduled arrival: the percentile
   trajectory over time is what a sustained-rate run is actually for —
   a closed-loop summary hides a growing backlog behind one number *)
let trajectory ~window_ms jobs lat =
  if window_ms <= 0. || Array.length jobs = 0 then []
  else begin
    let last =
      Array.fold_left (fun acc j -> Float.max acc j.j_arrival_ms) 0. jobs
    in
    let windows = 1 + int_of_float (last /. window_ms) in
    List.filter_map
      (fun w ->
        let lo = float_of_int w *. window_ms in
        let hi = lo +. window_ms in
        let samples =
          Array.to_seq jobs
          |> Seq.mapi (fun i j -> (j.j_arrival_ms, lat.(i)))
          |> Seq.filter (fun (a, _) -> a >= lo && a < hi)
          |> Seq.map snd |> Array.of_seq
        in
        if Array.length samples = 0 then None
        else
          Some
            {
              w_from_ms = lo;
              w_jobs = Array.length samples;
              w_latency = latency_of samples;
            })
      (List.init windows Fun.id)
  end

let max_reported_errors = 32

let run ?(workers = 1) ?(window_ms = 250.) ~session jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let workers = max 1 workers in
  let instr = Xqse.Session.instr session in
  let lock = Sync.create () in
  (* per-job slots: each index is written by exactly one worker *)
  let lat = Array.make n 0. in
  let ok = Array.make n false in
  let err_m = Mutex.create () in
  let errors = ref [] in
  let next = Stdlib.Atomic.make 0 in
  let open_loop = Array.exists (fun j -> j.j_arrival_ms > 0.) jobs in
  (* fork the worker sessions up front, on this domain: forking reads
     the template's registry and module tables, and doing it before any
     worker runs keeps that a single-threaded affair *)
  let sessions =
    if workers = 1 then [| session |]
    else begin
      let cfg = Xqse.Session.config session in
      Array.init workers (fun _ -> Xqse.Session.with_config session cfg)
    end
  in
  let t0 = Unix.gettimeofday () in
  let worker wsess =
    let rec loop () =
      let i = Stdlib.Atomic.fetch_and_add next 1 in
      if i < n then begin
        let j = jobs.(i) in
        let arrive = t0 +. (j.j_arrival_ms /. 1000.) in
        let rec wait () =
          let now = Unix.gettimeofday () in
          if now < arrive then begin
            Unix.sleepf (Float.min 0.002 (arrive -. now));
            wait ()
          end
        in
        if open_loop then wait ();
        (* open loop: latency from the scheduled arrival, so a backlog
           shows up as latency; closed loop: pure service time *)
        let start = if open_loop then arrive else Unix.gettimeofday () in
        Instr.bump instr Instr.K.server_jobs;
        (try
           (match j.j_kind with
           | Submit ->
             Instr.bump instr Instr.K.server_submits;
             Sync.with_write lock (fun () -> j.j_run wsess)
           | Read | Script -> Sync.with_read lock (fun () -> j.j_run wsess));
           ok.(i) <- true
         with e ->
           Instr.bump instr Instr.K.server_errors;
           let msg = Printexc.to_string e in
           Mutex.protect err_m (fun () ->
               if List.length !errors < max_reported_errors then
                 errors := (j.j_label, msg) :: !errors));
        lat.(i) <- (Unix.gettimeofday () -. start) *. 1000.;
        loop ()
      end
    in
    loop ()
  in
  if workers = 1 then worker sessions.(0)
  else
    Array.map (fun s -> Domain.spawn (fun () -> worker s)) sessions
    |> Array.iter Domain.join;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let by_kind =
    List.map
      (fun k ->
        ( kind_name k,
          Array.fold_left
            (fun acc j -> if j.j_kind = k then acc + 1 else acc)
            0 jobs ))
      [ Read; Script; Submit ]
  in
  {
    r_workers = workers;
    r_jobs = n;
    r_ok = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ok;
    r_errors = List.rev !errors;
    r_wall_ms = wall_ms;
    r_qps = (if wall_ms > 0. then float_of_int n /. (wall_ms /. 1000.) else 0.);
    r_latency = latency_of lat;
    r_by_kind = by_kind;
    r_trajectory = (if open_loop then trajectory ~window_ms jobs lat else []);
  }
