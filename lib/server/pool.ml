type kind = Read | Script | Submit

let kind_name = function
  | Read -> "read"
  | Script -> "script"
  | Submit -> "submit"

type job = {
  j_kind : kind;
  j_label : string;
  j_arrival_ms : float;
  j_deadline_ms : float option;
  j_run : Xqse.Session.t -> unit;
}

type latency = {
  l_p50 : float;
  l_p95 : float;
  l_p99 : float;
  l_max : float;
  l_mean : float;
}

type window = { w_from_ms : float; w_jobs : int; w_latency : latency }

type shed_policy = {
  sp_queue_bound : int option;
  sp_delay_target_ms : float option;
}

type brownout = {
  b_enter_ms : float;
  b_exit_ms : float;
  b_apply : bool -> unit;
}

type overload = {
  o_deadline_ms : float option;
  o_shed : shed_policy option;
  o_brownout : brownout option;
  o_clock : Resilience.Clock.t option;
}

let no_overload =
  { o_deadline_ms = None; o_shed = None; o_brownout = None; o_clock = None }

type report = {
  r_workers : int;
  r_jobs : int;
  r_ok : int;
  r_accepted : int;
  r_shed : int;
  r_expired : int;
  r_errors : (string * string) list;
  r_error_kinds : (string * int) list;
  r_wall_ms : float;
  r_qps : float;
  r_goodput : float;
  r_latency : latency;
  r_accepted_latency : latency;
  r_by_kind : (string * int) list;
  r_kind_latency : (string * latency) list;
  r_trajectory : window list;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (ceil (q /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let latency_of samples =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let mean =
    if n = 0 then 0. else Array.fold_left ( +. ) 0. sorted /. float_of_int n
  in
  {
    l_p50 = percentile sorted 50.;
    l_p95 = percentile sorted 95.;
    l_p99 = percentile sorted 99.;
    l_max = (if n = 0 then 0. else sorted.(n - 1));
    l_mean = mean;
  }

(* bucket open-loop latencies by scheduled arrival: the percentile
   trajectory over time is what a sustained-rate run is actually for —
   a closed-loop summary hides a growing backlog behind one number *)
let trajectory ~window_ms jobs lat =
  if window_ms <= 0. || Array.length jobs = 0 then []
  else begin
    let last =
      Array.fold_left (fun acc j -> Float.max acc j.j_arrival_ms) 0. jobs
    in
    let windows = 1 + int_of_float (last /. window_ms) in
    List.filter_map
      (fun w ->
        let lo = float_of_int w *. window_ms in
        let hi = lo +. window_ms in
        let samples =
          Array.to_seq jobs
          |> Seq.mapi (fun i j -> (j.j_arrival_ms, lat.(i)))
          |> Seq.filter (fun (a, _) -> a >= lo && a < hi)
          |> Seq.map snd |> Array.of_seq
        in
        if Array.length samples = 0 then None
        else
          Some
            {
              w_from_ms = lo;
              w_jobs = Array.length samples;
              w_latency = latency_of samples;
            })
      (List.init windows Fun.id)
  end

let max_reported_errors = 32

(* stable-code classification of a job failure: RESX000x codes surface
   whether the exception crossed the XQSE error surface (Item.Error in
   the err: namespace) or came straight from the resilience layer *)
let error_kind = function
  | Xdm.Item.Error { code; _ }
    when code.Xdm.Qname.uri = Xdm.Qname.err_ns
         && String.length code.Xdm.Qname.local >= 4
         && String.sub code.Xdm.Qname.local 0 4 = "RESX" ->
    code.Xdm.Qname.local
  | Resilience.Control.Error { code; _ } -> Resilience.Control.code_name code
  | _ -> "other"

(* human-readable failure text for the report: structured errors print
   their code and message, everything else falls back to Printexc *)
let error_message = function
  | Xdm.Item.Error { code; message; _ } ->
    Printf.sprintf "%s: %s" (Xdm.Qname.to_string code) message
  | Resilience.Control.Error { source; code; message } ->
    Printf.sprintf "err:%s at %s: %s"
      (Resilience.Control.code_name code)
      source message
  | e -> Printexc.to_string e

(* queueing-delay EWMA — the pool's pressure signal. One shared cell,
   updated at every dequeue; crossing [b_enter_ms] switches brownout on,
   falling below [b_exit_ms] switches it off (hysteresis: exit below
   enter, so the signal doesn't flap around one threshold). *)
type pressure = {
  pr_lock : Mutex.t;
  mutable pr_ewma : float;
  mutable pr_primed : bool;
  mutable pr_active : bool;
}

let ewma_alpha = 0.2

let observe_pressure pr bo delay_ms =
  match bo with
  | None -> ()
  | Some bo ->
    let transition =
      Mutex.protect pr.pr_lock (fun () ->
          pr.pr_ewma <-
            (if pr.pr_primed then
               (ewma_alpha *. delay_ms) +. ((1. -. ewma_alpha) *. pr.pr_ewma)
             else delay_ms);
          pr.pr_primed <- true;
          if (not pr.pr_active) && pr.pr_ewma > bo.b_enter_ms then begin
            pr.pr_active <- true;
            Some true
          end
          else if pr.pr_active && pr.pr_ewma < bo.b_exit_ms then begin
            pr.pr_active <- false;
            Some false
          end
          else None)
    in
    (match transition with Some on -> bo.b_apply on | None -> ())

let run ?(workers = 1) ?(window_ms = 250.) ?(overload = no_overload) ~session
    jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let workers = max 1 workers in
  let instr = Xqse.Session.instr session in
  (* per-job slots: each index is written by exactly one worker *)
  let lat = Array.make n 0. in
  let ok = Array.make n false in
  let accepted = Array.make n false in
  let shed = Array.make n false in
  let expired = Array.make n false in
  let err_m = Mutex.create () in
  let errors = ref [] in
  let kinds : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let next = Stdlib.Atomic.make 0 in
  let open_loop = Array.exists (fun j -> j.j_arrival_ms > 0.) jobs in
  let pressure =
    { pr_lock = Mutex.create (); pr_ewma = 0.; pr_primed = false;
      pr_active = false }
  in
  let record_failure label kind msg =
    Mutex.protect err_m (fun () ->
        Hashtbl.replace kinds kind
          (1 + Option.value (Hashtbl.find_opt kinds kind) ~default:0);
        if List.length !errors < max_reported_errors then
          errors := (label, msg) :: !errors)
  in
  (* fork the worker sessions up front, on this domain: forking reads
     the template's registry and module tables, and doing it before any
     worker runs keeps that a single-threaded affair *)
  let sessions =
    if workers = 1 then [| session |]
    else begin
      let cfg = Xqse.Session.config session in
      Array.init workers (fun _ -> Xqse.Session.with_config session cfg)
    end
  in
  let t0 = Unix.gettimeofday () in
  (* admission backlog of job [i] at run-relative [now_ms]: how many of
     the jobs from [i] on have already arrived (arrivals are generated
     nondecreasing, so the scan stops at the first future arrival; cost
     is O(backlog), which is exactly what a real queue-length probe
     costs) *)
  let backlog_from i now_ms =
    let rec count k =
      if k < n && jobs.(k).j_arrival_ms <= now_ms then count (k + 1) else k - i
    in
    count i
  in
  let worker wsess =
    let rec loop () =
      let i = Stdlib.Atomic.fetch_and_add next 1 in
      if i < n then begin
        let j = jobs.(i) in
        let arrive = t0 +. (j.j_arrival_ms /. 1000.) in
        let rec wait () =
          let now = Unix.gettimeofday () in
          if now < arrive then begin
            Unix.sleepf (Float.min 0.002 (arrive -. now));
            wait ()
          end
        in
        if open_loop then wait ();
        (* open loop: latency from the scheduled arrival, so a backlog
           shows up as latency; closed loop: pure service time *)
        let now = Unix.gettimeofday () in
        let start = if open_loop then arrive else now in
        let qdelay_ms = if open_loop then (now -. arrive) *. 1000. else 0. in
        observe_pressure pressure overload.o_brownout qdelay_ms;
        Instr.bump instr Instr.K.server_jobs;
        let budget =
          match j.j_deadline_ms with
          | Some _ as b -> b
          | None -> overload.o_deadline_ms
        in
        (* admission: a request whose whole budget died in the queue is
           expired (RESX0005); an over-bound or over-delay-target queue
           sheds from the head (RESX0006). Both cost ~zero service time:
           the job body never runs. *)
        let verdict =
          match budget with
          | Some b when qdelay_ms >= b -> `Expired b
          | _ -> (
            match overload.o_shed with
            | None -> `Admit
            | Some sp ->
              let over_bound =
                match sp.sp_queue_bound with
                | Some bound ->
                  backlog_from i ((now -. t0) *. 1000.) > bound
                | None -> false
              in
              let over_target =
                match sp.sp_delay_target_ms with
                | Some target -> qdelay_ms > target
                | None -> false
              in
              if over_bound then
                `Shed
                  (Printf.sprintf "queue depth over bound %d"
                     (Option.get sp.sp_queue_bound))
              else if over_target then
                `Shed
                  (Printf.sprintf
                     "queueing delay %.1fms over target %.0fms" qdelay_ms
                     (Option.get sp.sp_delay_target_ms))
              else `Admit)
        in
        (match verdict with
        | `Expired b ->
          expired.(i) <- true;
          Instr.bump instr Instr.K.overload_expired;
          record_failure j.j_label "RESX0005"
            (Printf.sprintf
               "err:RESX0005 deadline of %.0fms exhausted after %.1fms in \
                queue"
               b qdelay_ms)
        | `Shed why ->
          shed.(i) <- true;
          Instr.bump instr Instr.K.overload_shed;
          record_failure j.j_label "RESX0006"
            (Printf.sprintf "err:RESX0006 shed at admission: %s" why)
        | `Admit ->
          accepted.(i) <- true;
          (* no pool-level lock: reads run against pinned MVCC snapshots
             and submits take per-table write locks below (publication is
             atomic at commit), so the pool never serializes jobs — a
             submit in flight no longer excludes every reader *)
          let run_job () =
            (match j.j_kind with
            | Submit -> Instr.bump instr Instr.K.server_submits
            | Read | Script -> ());
            j.j_run wsess
          in
          let run_deadlined () =
            match budget with
            | None -> run_job ()
            | Some b ->
              (* the queue already spent [qdelay_ms] of the budget; the
                 service gets what is left, on the hybrid virtual+wall
                 clock, and the consumed span lands in the
                 [deadline.budget] timer *)
              let d =
                Resilience.Deadline.start ?clock:overload.o_clock
                  ~budget_ms:(b -. qdelay_ms) ()
              in
              Fun.protect
                ~finally:(fun () ->
                  Instr.add_ms instr Instr.K.t_deadline_budget
                    (qdelay_ms +. Resilience.Deadline.elapsed_ms d))
                (fun () -> Resilience.Deadline.with_deadline d run_job)
          in
          (try
             run_deadlined ();
             ok.(i) <- true
           with e ->
             Instr.bump instr Instr.K.server_errors;
             record_failure j.j_label (error_kind e) (error_message e)));
        lat.(i) <- (Unix.gettimeofday () -. start) *. 1000.;
        loop ()
      end
    in
    loop ()
  in
  if workers = 1 then worker sessions.(0)
  else
    Array.map (fun s -> Domain.spawn (fun () -> worker s)) sessions
    |> Array.iter Domain.join;
  (* the run is over, the queue is empty: pressure has cleared by
     definition, so a still-active brownout restores on the way out *)
  (match overload.o_brownout with
  | Some bo when pressure.pr_active ->
    pressure.pr_active <- false;
    bo.b_apply false
  | _ -> ());
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let count a = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a in
  let by_kind =
    List.map
      (fun k ->
        ( kind_name k,
          Array.fold_left
            (fun acc j -> if j.j_kind = k then acc + 1 else acc)
            0 jobs ))
      [ Read; Script; Submit ]
  in
  let mask m =
    Array.of_seq
      (Seq.filter_map
         (fun i -> if m.(i) then Some lat.(i) else None)
         (Seq.init n Fun.id))
  in
  let n_ok = count ok in
  {
    r_workers = workers;
    r_jobs = n;
    r_ok = n_ok;
    r_accepted = count accepted;
    r_shed = count shed;
    r_expired = count expired;
    r_errors = List.rev !errors;
    r_error_kinds =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []);
    r_wall_ms = wall_ms;
    r_qps = (if wall_ms > 0. then float_of_int n /. (wall_ms /. 1000.) else 0.);
    r_goodput =
      (if wall_ms > 0. then float_of_int n_ok /. (wall_ms /. 1000.) else 0.);
    r_latency = latency_of lat;
    r_accepted_latency = latency_of (mask accepted);
    r_by_kind = by_kind;
    r_kind_latency =
      List.filter_map
        (fun k ->
          let m =
            Array.mapi (fun i a -> a && jobs.(i).j_kind = k) accepted
          in
          let samples = mask m in
          if Array.length samples = 0 then None
          else Some (kind_name k, latency_of samples))
        [ Read; Script; Submit ];
    r_trajectory = (if open_loop then trajectory ~window_ms jobs lat else []);
  }
