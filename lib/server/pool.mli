(** The concurrent query server: a pool of worker domains draining a
    job list against per-worker session forks of one template session.

    Each worker gets its own {!Xqse.Session.with_config} fork (own plan
    cache, own procedure runtime, shared host state), so the only
    shared mutable surface is the dataspace's sources — and those are
    safe to hit concurrently: every query runs against a pinned MVCC
    snapshot of the source tables and every submit takes per-table
    write locks and publishes its new versions atomically at commit
    (see {!Relational.Table}). The pool itself holds no lock around
    jobs; a reader never sees half a changeset, and a submit in flight
    no longer excludes readers of unrelated (or even the same) tables.

    With [workers = 1] no domain is spawned and jobs run in list order
    on the calling domain — a deterministic baseline the tests diff
    concurrent runs against.

    Jobs carry open-loop arrival offsets: a job whose [j_arrival_ms] is
    positive is not started before that offset from run start, and its
    latency is measured from the {e scheduled} arrival — queueing delay
    under an overloaded pool counts, as in any open-loop harness. When
    every offset is [0.] the run is closed-loop and latency is pure
    service time.

    {2 Overload protection}

    An {!overload} config arms three independent defenses, all enforced
    at admission (when a worker picks the job up), before any service
    work happens, so refused requests cost ~zero service time:

    - {e deadlines}: each job's budget (its own [j_deadline_ms], else
      the pool default) starts at its scheduled arrival. A job whose
      whole budget died in the queue fails immediately with
      [err:RESX0005]; an admitted job runs under the ambient
      {!Resilience.Deadline} carrying what is left, which
      {!Resilience.Control.guard} and session execution consult below.
    - {e shedding}: a bounded queue ([sp_queue_bound] — backlog of
      already-arrived jobs) and/or a CoDel-style delay target
      ([sp_delay_target_ms] — drop while queueing delay exceeds it)
      reject with [err:RESX0006].
    - {e brownout}: the queueing-delay EWMA crossing [b_enter_ms]
      invokes [b_apply true] (typically {!Resilience.Control.set_brownout}
      — degradable reads start degrading proactively); falling below
      [b_exit_ms], or the run draining completely, restores with
      [b_apply false]. *)

type kind = Read | Script | Submit

val kind_name : kind -> string
(** ["read"], ["script"], ["submit"]. *)

type job = {
  j_kind : kind;
  j_label : string;  (** for error reports *)
  j_arrival_ms : float;  (** open-loop arrival offset; [0.] = immediate *)
  j_deadline_ms : float option;
      (** end-to-end budget from scheduled arrival; [None] = the pool
          default (which may itself be off) *)
  j_run : Xqse.Session.t -> unit;
      (** receives the worker's session fork; submit jobs typically
          ignore it and drive the shared dataspace directly *)
}

type latency = {
  l_p50 : float;
  l_p95 : float;
  l_p99 : float;
  l_max : float;
  l_mean : float;
}
(** Milliseconds. *)

type window = { w_from_ms : float; w_jobs : int; w_latency : latency }
(** One slice of an open-loop run: the jobs whose scheduled arrival
    fell in [[w_from_ms, w_from_ms + window)], with their latency
    percentiles. *)

type shed_policy = {
  sp_queue_bound : int option;
      (** reject when the backlog of arrived-but-unserved jobs exceeds
          this *)
  sp_delay_target_ms : float option;
      (** CoDel-style: reject while queueing delay exceeds this *)
}

type brownout = {
  b_enter_ms : float;  (** queueing-delay EWMA above this enters *)
  b_exit_ms : float;  (** EWMA below this exits (keep < enter) *)
  b_apply : bool -> unit;  (** called on each transition *)
}

type overload = {
  o_deadline_ms : float option;  (** default budget for every job *)
  o_shed : shed_policy option;
  o_brownout : brownout option;
  o_clock : Resilience.Clock.t option;
      (** the control's virtual clock, so injected latency counts
          against budgets *)
}

val no_overload : overload
(** Everything off — the PR 7 pool behavior. *)

type report = {
  r_workers : int;
  r_jobs : int;  (** jobs attempted *)
  r_ok : int;  (** jobs that completed without raising *)
  r_accepted : int;  (** jobs admitted to service (not shed/expired) *)
  r_shed : int;  (** rejected at admission with [err:RESX0006] *)
  r_expired : int;  (** budget dead on arrival, [err:RESX0005] *)
  r_errors : (string * string) list;  (** (label, message), capped *)
  r_error_kinds : (string * int) list;
      (** failure counts per stable code ([RESX0001]..[RESX0006]) or
          ["other"], sorted by code — uncapped, unlike [r_errors] *)
  r_wall_ms : float;
  r_qps : float;  (** attempted jobs per wall-clock second *)
  r_goodput : float;  (** {e successful} jobs per wall-clock second *)
  r_latency : latency;
      (** over all jobs; a shed/expired job contributes its (tiny)
          time-to-rejection *)
  r_accepted_latency : latency;  (** over admitted jobs only *)
  r_by_kind : (string * int) list;  (** job count per {!kind_name} *)
  r_kind_latency : (string * latency) list;
      (** accepted-job latency per {!kind_name} (kinds with no accepted
          jobs are omitted) — the mixed-workload headline: with MVCC
          snapshots a background submit stream must not drag read p99
          up to submit latency *)
  r_trajectory : window list;
      (** the latency trajectory over arrival time — how p50/p95/p99
          evolve as a sustained-rate run progresses, which a single
          whole-run percentile cannot show (a pool slowly falling
          behind its arrival rate looks fine in the aggregate and
          catastrophic in the last window). Empty for closed-loop
          runs (every arrival at [0.]). *)
}

val percentile : float array -> float -> float
(** [percentile sorted q] is the nearest-rank [q]-th percentile of a
    sorted array ([0.] when empty). *)

val trajectory : window_ms:float -> job array -> float array -> window list
(** [trajectory ~window_ms jobs lat] buckets per-job latencies by
    scheduled arrival into [window_ms]-wide slices; windows with no
    arrivals are dropped. Exposed for direct testing of the slicing
    edges ({!run} calls it with the measured latencies). *)

val error_kind : exn -> string
(** The stable-code classification used for {!report.r_error_kinds}:
    the [RESX000x] local name for resilience-surfaced errors (either as
    [Xdm.Item.Error] in the [err:] namespace or a raw
    {!Resilience.Control.Error}), ["other"] for anything else. *)

val run :
  ?workers:int ->
  ?window_ms:float ->
  ?overload:overload ->
  session:Xqse.Session.t ->
  job list ->
  report
(** Drain [jobs] with [workers] domains (default [1]) forked from
    [session]. Bumps [server.jobs] / [server.errors] /
    [server.submits] — plus [overload.shed] / [overload.expired] and
    the [deadline.budget] timer when [overload] arms those — on the
    session's instrumentation handle. Job exceptions are caught,
    counted and reported — one bad job never takes down the pool.
    [window_ms] (default [250.]) sets the trajectory bucket width for
    open-loop runs. *)
