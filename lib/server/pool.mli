(** The concurrent query server: a pool of worker domains draining a
    job list against per-worker session forks of one template session.

    Each worker gets its own {!Xqse.Session.with_config} fork (own plan
    cache, own procedure runtime, shared host state), so the only
    shared mutable surface is the dataspace's sources — and access to
    those is serialized by a {!Sync} read/write lock: [Read] and
    [Script] jobs run under the shared read side, [Submit] jobs under
    the exclusive write side. Submits are therefore snapshot-consistent
    with respect to reads (a reader never sees half a changeset).

    With [workers = 1] no domain is spawned and jobs run in list order
    on the calling domain — a deterministic baseline the tests diff
    concurrent runs against.

    Jobs carry open-loop arrival offsets: a job whose [j_arrival_ms] is
    positive is not started before that offset from run start, and its
    latency is measured from the {e scheduled} arrival — queueing delay
    under an overloaded pool counts, as in any open-loop harness. When
    every offset is [0.] the run is closed-loop and latency is pure
    service time. *)

type kind = Read | Script | Submit

val kind_name : kind -> string
(** ["read"], ["script"], ["submit"]. *)

type job = {
  j_kind : kind;
  j_label : string;  (** for error reports *)
  j_arrival_ms : float;  (** open-loop arrival offset; [0.] = immediate *)
  j_run : Xqse.Session.t -> unit;
      (** receives the worker's session fork; submit jobs typically
          ignore it and drive the shared dataspace directly *)
}

type latency = {
  l_p50 : float;
  l_p95 : float;
  l_p99 : float;
  l_max : float;
  l_mean : float;
}
(** Milliseconds. *)

type window = { w_from_ms : float; w_jobs : int; w_latency : latency }
(** One slice of an open-loop run: the jobs whose scheduled arrival
    fell in [[w_from_ms, w_from_ms + window)], with their latency
    percentiles. *)

type report = {
  r_workers : int;
  r_jobs : int;  (** jobs attempted *)
  r_ok : int;  (** jobs that completed without raising *)
  r_errors : (string * string) list;  (** (label, message), capped *)
  r_wall_ms : float;
  r_qps : float;  (** completed jobs per wall-clock second *)
  r_latency : latency;
  r_by_kind : (string * int) list;  (** job count per {!kind_name} *)
  r_trajectory : window list;
      (** the latency trajectory over arrival time — how p50/p95/p99
          evolve as a sustained-rate run progresses, which a single
          whole-run percentile cannot show (a pool slowly falling
          behind its arrival rate looks fine in the aggregate and
          catastrophic in the last window). Empty for closed-loop
          runs (every arrival at [0.]). *)
}

val percentile : float array -> float -> float
(** [percentile sorted q] is the nearest-rank [q]-th percentile of a
    sorted array ([0.] when empty). *)

val run :
  ?workers:int -> ?window_ms:float -> session:Xqse.Session.t -> job list ->
  report
(** Drain [jobs] with [workers] domains (default [1]) forked from
    [session]. Bumps [server.jobs] / [server.errors] /
    [server.submits] on the session's instrumentation handle. Job
    exceptions are caught, counted and reported — one bad job never
    takes down the pool. [window_ms] (default [250.]) sets the
    trajectory bucket width for open-loop runs. *)
