(** Writer-preferring read/write lock.

    The server's concurrency story in one primitive: reads (queries,
    XQSE scripts) share the lock, submits take it exclusively. Because
    a submit excludes every reader, a read that is in flight when a
    submit arrives either completed against the pre-submit state or
    starts after the commit — it can never observe a half-applied
    changeset, which is the snapshot-consistency guarantee the paper's
    platform gets from its relational sources' transactions.

    Writer preference: once a writer is waiting, new readers queue
    behind it, so a steady read load cannot starve submits. *)

type t

val create : unit -> t

val with_read : t -> (unit -> 'a) -> 'a
(** Run [f] holding a shared read lock. Re-raises [f]'s exceptions
    after releasing. *)

val with_write : t -> (unit -> 'a) -> 'a
(** Run [f] holding the exclusive write lock. Re-raises [f]'s
    exceptions after releasing. *)

val readers : t -> int
(** Number of threads currently inside {!with_read} (diagnostic). *)
