(** Seeded workload generation over the CustomerProfile scenario.

    Builds a deterministic open-loop job mix for {!Pool.run}: Figure 3
    read methods ([getProfile] / [getProfileById]), XQSE script shapes
    from the paper's use cases (iterate over profiles, while-loop
    polling, conditional accumulation), and chaos-style submits that
    read customer 007's profile, mutate fields spanning both databases
    through the SDO changeset, and submit. The whole list — kinds,
    targets, arrival times — is a pure function of [seed], so a run
    replays exactly. *)

type mix = { m_reads : int; m_scripts : int; m_submits : int }
(** Relative weights; a zero weight drops that kind entirely. *)

val default_mix : mix
(** 6 : 3 : 1 — read-mostly, as the paper's platform sees in service
    front-ends. *)

val jobs :
  ?mix:mix ->
  ?rate:float ->
  ?io_ms:float ->
  ?submit_io_ms:float ->
  ?deadline_ms:float ->
  ?customers:int ->
  seed:int ->
  count:int ->
  Fixtures.Customer_profile.env ->
  Pool.job list
(** [count] jobs against [env]. [customers] (default [3]) must match
    the [?customers] the env was built with so by-id reads hit.
    [rate] > 0 spaces arrivals as a Poisson process of that many jobs
    per second (open loop); omitted, all arrivals are immediate
    (closed loop). [io_ms] sleeps that long inside every job — the
    simulated wire round-trip of remote sources, which the in-memory
    substrate otherwise lacks; with it the workload is latency-bound
    and the pool has real I/O to overlap across workers.
    [submit_io_ms] overrides [io_ms] for submit jobs only — a writer
    stream with heavier wire time than reads, the shape that used to
    inflate reader tail latency under the retired pool-wide lock and
    must not under MVCC. [deadline_ms] stamps every job with that
    end-to-end budget (omitted, jobs inherit the pool default, if
    any). Read and script jobs evaluate on the worker's session fork;
    submit jobs drive [env]'s dataspace directly, taking the per-table
    write locks of their update plan. *)
