type t = {
  m : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable active_readers : int;
  mutable writer : bool;
  mutable waiting_writers : int;
}

let create () =
  {
    m = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    active_readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let read_lock t =
  Mutex.lock t.m;
  (* waiting_writers in the guard is the writer preference: a reader
     arriving behind a queued writer waits even though the lock is
     readable right now *)
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.can_read t.m
  done;
  t.active_readers <- t.active_readers + 1;
  Mutex.unlock t.m

let read_unlock t =
  Mutex.lock t.m;
  t.active_readers <- t.active_readers - 1;
  if t.active_readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.m

let write_lock t =
  Mutex.lock t.m;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.active_readers > 0 do
    Condition.wait t.can_write t.m
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.m

let write_unlock t =
  Mutex.lock t.m;
  t.writer <- false;
  (* wake both sides; the guards sort out who actually proceeds *)
  Condition.signal t.can_write;
  Condition.broadcast t.can_read;
  Mutex.unlock t.m

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f

let readers t = Mutex.protect t.m (fun () -> t.active_readers)
