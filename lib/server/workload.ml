module FC = Fixtures.Customer_profile
module Rng = Resilience.Rng

type mix = { m_reads : int; m_scripts : int; m_submits : int }

let default_mix = { m_reads = 6; m_scripts = 3; m_submits = 1 }

(* --- job bodies ------------------------------------------------------ *)

let eval_job text sess = ignore (Xqse.Session.eval sess text)

let read_texts customers rng =
  (* a small pool of distinct program texts so worker plan caches warm
     up, like repeated service calls would *)
  if Rng.chance rng 25 then ("getProfile", "count(profile:getProfile())")
  else begin
    let cid =
      if Rng.chance rng 10 then "007"
      else Printf.sprintf "C%d" (1 + Rng.int rng (max 1 customers))
    in
    ( "getProfileById(" ^ cid ^ ")",
      Printf.sprintf "profile:getProfileById(\"%s\")" cid )
  end

let script_texts customers rng =
  let cid = Printf.sprintf "C%d" (1 + Rng.int rng (max 1 customers)) in
  match Rng.int rng 3 with
  | 0 ->
    (* use case: iterate over a profile's orders, accumulating *)
    ( "iterate-orders(" ^ cid ^ ")",
      Printf.sprintf
        {| {
             declare $open := 0;
             iterate $o over profile:getProfileById("%s")/Orders/ORDERS {
               set $open := $open + (if ($o/STATUS eq 'OPEN') then 1 else 0);
             }
             return value $open;
           } |}
        cid )
  | 1 ->
    (* use case: while-loop polling a read method *)
    ( "while-cards(" ^ cid ^ ")",
      Printf.sprintf
        {| {
             declare $i := 0;
             declare $cards := 0;
             while ($i lt 2) {
               set $i := $i + 1;
               set $cards := $cards +
                 count(profile:getProfileById("%s")/CreditCards/CREDIT_CARD);
             }
             return value $cards;
           } |}
        cid )
  | _ ->
    (* use case: guarded read with error handling *)
    ( "try-profile",
      {| {
           declare $r := 0;
           try { set $r := count(profile:getProfile()); }
           catch (*) { set $r := (0 - 1); }
           return value $r;
         } |} )

let submit_job env k _sess =
  (* the Figure 4 update: read 007's profile, change fields that land
     in both databases, submit the changeset. Concurrent submits to the
     same customer race at the optimistic-concurrency check (the read
     runs against a snapshot, unlocked, and a rival's commit between
     read and write makes the conditioned UPDATE match nothing) — so,
     like any OCC client, re-read and retry on conflict. *)
  let rec attempt tries =
    let dg = FC.get_profile_by_id env "007" in
    Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] (Printf.sprintf "Name%d" k);
    Sdo.set_leaf dg 1
      [ ("CreditCards", 1); ("CREDIT_CARD", 1); ("BRAND", 1) ]
      (Printf.sprintf "BRAND%d" k);
    let res = Aldsp.Dataspace.submit env.FC.ds env.FC.svc dg in
    if not res.Aldsp.Dataspace.sr_committed then
      if tries > 1 then attempt (tries - 1) else failwith "submit aborted"
  in
  attempt 10

(* --- mix -------------------------------------------------------------- *)

let jobs ?(mix = default_mix) ?rate ?io_ms ?submit_io_ms ?deadline_ms
    ?(customers = 3) ~seed ~count env =
  let with_io ?ms f sess =
    (* the in-memory substrate answers in microseconds; real ALDSP
       sources are a network hop away. The optional sleep puts that
       wire time back, giving worker domains real I/O to overlap. *)
    (match (match ms with Some _ -> ms | None -> io_ms) with
    | Some ms when ms > 0. -> Unix.sleepf (ms /. 1000.)
    | _ -> ());
    f sess
  in
  let rng = Rng.make seed in
  let weights =
    [
      (Pool.Read, max 0 mix.m_reads);
      (Pool.Script, max 0 mix.m_scripts);
      (Pool.Submit, max 0 mix.m_submits);
    ]
  in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  if total = 0 then invalid_arg "Workload.jobs: empty mix";
  let pick () =
    let x = Rng.int rng total in
    let rec go acc = function
      | [] -> Pool.Read
      | (k, w) :: rest -> if x < acc + w then k else go (acc + w) rest
    in
    go 0 weights
  in
  let arrival =
    match rate with
    | Some r when r > 0. ->
      let clock = ref 0. in
      fun () ->
        (* Poisson arrivals: exponential interarrival times *)
        let u = Rng.float rng 1.0 in
        clock := !clock +. (-.log (1. -. u) *. 1000. /. r);
        !clock
    | _ -> fun () -> 0.
  in
  List.init count (fun i ->
      let kind = pick () in
      let j_arrival_ms = arrival () in
      match kind with
      | Pool.Read ->
        let label, text = read_texts customers rng in
        {
          Pool.j_kind = Pool.Read;
          j_label = Printf.sprintf "read#%d:%s" i label;
          j_arrival_ms;
          j_deadline_ms = deadline_ms;
          j_run = with_io (eval_job text);
        }
      | Pool.Script ->
        let label, text = script_texts customers rng in
        {
          Pool.j_kind = Pool.Script;
          j_label = Printf.sprintf "script#%d:%s" i label;
          j_arrival_ms;
          j_deadline_ms = deadline_ms;
          j_run = with_io (eval_job text);
        }
      | Pool.Submit ->
        {
          Pool.j_kind = Pool.Submit;
          j_label = Printf.sprintf "submit#%d" i;
          j_arrival_ms;
          j_deadline_ms = deadline_ms;
          j_run = with_io ?ms:submit_io_ms (submit_job env i);
        })
