type column = { col_name : string; col_type : Value.col_type; nullable : bool }

type foreign_key = {
  fk_columns : string list;
  fk_ref_table : string;
  fk_ref_columns : string list;
}

type schema = {
  tbl_name : string;
  columns : column list;
  primary_key : string list;
  foreign_keys : foreign_key list;
}

type row = Value.t array

exception Constraint_violation of string

(* Persistent row store keyed on the primary key. Polymorphic compare
   on [Value.t list] gives the same key identity the old Hashtbl store
   had and the same ascending-pk iteration order the old sorted scan
   produced. *)
module PkMap = Map.Make (struct
  type t = Value.t list

  let compare = compare
end)

(* The versioned store: rows plus the secondary indexes (key values ->
   pk list). Indexes live inside the store so a reader pinned to an
   older version keeps a consistent plan. All maps are persistent —
   versions share structure, so publishing one copies nothing. *)
type store = {
  s_rows : row PkMap.t;
  s_sec : (string list * Value.t list list PkMap.t) list;
}

type version = {
  v_id : int;
  v_store : store;
  (* pk-sorted row array, built on first scan of this version. Atomic
     so concurrent first scans race benignly (both build, one wins). *)
  v_scan : row array option Atomic.t;
}

(* per-version GC accounting: a version is collected when it has been
   superseded by a newer publish and nothing (snapshot or cursor) pins
   it anymore *)
type vmeta = { mutable pins : int; mutable superseded : bool }

type t = {
  schema : schema;
  indices : (string, int) Hashtbl.t;
  uid : int;  (* process-unique id, the ambient-snapshot key *)
  m : Mutex.t;  (* guards writer/waiters/vmeta/published swap *)
  cond : Condition.t;
  mutable writer : int option;  (* holder Domain.id *)
  mutable waiters : int;
  mutable published : version;
  mutable working : store option;  (* holder-private, uncommitted *)
  mutable next_vid : int;
  vmeta : (int, vmeta) Hashtbl.t;
  mutable instr : Instr.t;
}

let next_uid = Atomic.make 0
let self_id () = (Domain.self () :> int)

let create schema =
  if schema.primary_key = [] then
    invalid_arg
      (Printf.sprintf "table %s must have a primary key" schema.tbl_name);
  let indices = Hashtbl.create 8 in
  List.iteri
    (fun i c -> Hashtbl.replace indices c.col_name i)
    schema.columns;
  List.iter
    (fun k ->
      if not (Hashtbl.mem indices k) then
        invalid_arg
          (Printf.sprintf "table %s: unknown primary key column %s"
             schema.tbl_name k))
    schema.primary_key;
  let v0 =
    { v_id = 0; v_store = { s_rows = PkMap.empty; s_sec = [] };
      v_scan = Atomic.make None }
  in
  let vmeta = Hashtbl.create 4 in
  Hashtbl.replace vmeta 0 { pins = 0; superseded = false };
  {
    schema;
    indices;
    uid = Atomic.fetch_and_add next_uid 1;
    m = Mutex.create ();
    cond = Condition.create ();
    writer = None;
    waiters = 0;
    published = v0;
    working = None;
    next_vid = 1;
    vmeta;
    instr = Instr.disabled;
  }

let schema t = t.schema
let name t = t.schema.tbl_name
let set_instr t i = t.instr <- i

let col_index t col =
  match Hashtbl.find_opt t.indices col with
  | Some i -> i
  | None -> raise Not_found

let get row t col = row.(col_index t col)
let pk_of_row t row = List.map (fun k -> get row t k) t.schema.primary_key

(* ---- the global publish lock (reentrant) ----

   Multi-table commits publish every new version inside it, and
   snapshot capture reads the published heads inside it, so a captured
   version vector can never straddle a commit. *)

let pub_m = Mutex.create ()
let pub_cond = Condition.create ()
let pub_holder = ref (-1)
let pub_depth = ref 0

let publish_all f =
  let self = self_id () in
  Mutex.lock pub_m;
  if !pub_holder = self then incr pub_depth
  else begin
    while !pub_depth > 0 do
      Condition.wait pub_cond pub_m
    done;
    pub_holder := self;
    pub_depth := 1
  end;
  Mutex.unlock pub_m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock pub_m;
      decr pub_depth;
      if !pub_depth = 0 then begin
        pub_holder := -1;
        Condition.broadcast pub_cond
      end;
      Mutex.unlock pub_m)
    f

(* ---- version pinning and collection (all under t.m) ---- *)

let collect_locked t vid =
  Hashtbl.remove t.vmeta vid;
  Instr.bump t.instr ~n:(-1) Instr.K.mvcc_versions_live;
  Instr.bump t.instr Instr.K.mvcc_versions_collected

let pin_locked t v =
  match Hashtbl.find_opt t.vmeta v.v_id with
  | Some m -> m.pins <- m.pins + 1
  | None -> ()

let pin t v =
  Mutex.lock t.m;
  pin_locked t v;
  Mutex.unlock t.m

let unpin t v =
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.vmeta v.v_id with
  | Some m ->
    m.pins <- m.pins - 1;
    if m.pins <= 0 && m.superseded then collect_locked t v.v_id
  | None -> ());
  Mutex.unlock t.m

(* pin the published head, atomically with respect to publish swaps *)
let pin_published t =
  Mutex.lock t.m;
  let v = t.published in
  pin_locked t v;
  Mutex.unlock t.m;
  v

(* ---- ambient snapshots (domain-local) ---- *)

type snapshot = { sn_entries : (int, t * version) Hashtbl.t }

let ambient_key : snapshot option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let snapshot tables =
  publish_all (fun () ->
      let h = Hashtbl.create 16 in
      List.iter
        (fun t ->
          if not (Hashtbl.mem h t.uid) then
            Hashtbl.add h t.uid (t, pin_published t))
        tables;
      { sn_entries = h })

let release snap =
  Hashtbl.iter (fun _ (t, v) -> unpin t v) snap.sn_entries

let in_snapshot () = !(Domain.DLS.get ambient_key) <> None

let with_snapshot tables f =
  let slot = Domain.DLS.get ambient_key in
  match !slot with
  | Some _ -> f ()  (* nested query: reuse the outer snapshot *)
  | None ->
    let snap = snapshot tables in
    slot := Some snap;
    Fun.protect
      ~finally:(fun () ->
        slot := None;
        release snap)
      f

(* ---- write locking ---- *)

let lock_write t =
  Mutex.lock t.m;
  if t.writer <> None then Instr.bump t.instr Instr.K.mvcc_lock_contended;
  t.waiters <- t.waiters + 1;
  while t.writer <> None do
    Condition.wait t.cond t.m
  done;
  t.waiters <- t.waiters - 1;
  t.writer <- Some (self_id ());
  Mutex.unlock t.m;
  Instr.bump t.instr Instr.K.mvcc_lock_acquired

let holds_write t = t.writer = Some (self_id ())

let unlock_write t =
  Mutex.lock t.m;
  t.working <- None;
  t.writer <- None;
  Condition.broadcast t.cond;
  Mutex.unlock t.m

let discard_write t = t.working <- None

let commit_write t =
  if not (holds_write t) then
    invalid_arg (t.schema.tbl_name ^ ": commit_write without the write lock");
  match t.working with
  | None -> ()
  | Some s when s == t.published.v_store -> t.working <- None
  | Some s ->
    publish_all (fun () ->
        Mutex.lock t.m;
        let old = t.published in
        let vid = t.next_vid in
        t.next_vid <- vid + 1;
        let v = { v_id = vid; v_store = s; v_scan = Atomic.make None } in
        Hashtbl.replace t.vmeta vid { pins = 0; superseded = false };
        Instr.bump t.instr Instr.K.mvcc_versions_live;
        t.published <- v;
        t.working <- None;
        (match Hashtbl.find_opt t.vmeta old.v_id with
        | Some m ->
          m.superseded <- true;
          if m.pins <= 0 then collect_locked t old.v_id
        | None -> ());
        Mutex.unlock t.m;
        (* read-your-own-writes: if this domain's ambient snapshot pins
           the table, advance its pin to the version just published *)
        match !(Domain.DLS.get ambient_key) with
        | Some snap -> (
          match Hashtbl.find_opt snap.sn_entries t.uid with
          | Some (_, oldpin) ->
            pin t v;
            Hashtbl.replace snap.sn_entries t.uid (t, v);
            unpin t oldpin
          | None -> ())
        | None -> ())

(* ---- read views ----

   Priority: a domain holding the write lock sees its own working store
   (read-your-own-writes for FK checks and multi-statement submits);
   otherwise the ambient snapshot's pinned version if one is installed;
   otherwise the published head. *)

let view t =
  if holds_write t then
    match t.working with Some s -> s | None -> t.published.v_store
  else
    match !(Domain.DLS.get ambient_key) with
    | Some snap -> (
      match Hashtbl.find_opt snap.sn_entries t.uid with
      | Some (_, v) -> v.v_store
      | None -> t.published.v_store)
    | None -> t.published.v_store

(* the version identity of [view]: what the current domain's reads
   resolve to. A held write lock with a working store is an uncommitted
   view with no version yet — report -1 so version-keyed consumers (the
   result cache) bypass rather than tag uncommitted data with a
   published version. *)
let view_version t =
  if holds_write t then
    match t.working with Some _ -> -1 | None -> t.published.v_id
  else
    match !(Domain.DLS.get ambient_key) with
    | Some snap -> (
      match Hashtbl.find_opt snap.sn_entries t.uid with
      | Some (_, v) -> v.v_id
      | None -> t.published.v_id)
    | None -> t.published.v_id

let snapshot_find_pk snap t pk =
  let s =
    match Hashtbl.find_opt snap.sn_entries t.uid with
    | Some (_, v) -> v.v_store
    | None -> t.published.v_store
  in
  PkMap.find_opt pk s.s_rows

let row_count t = PkMap.cardinal (view t).s_rows
let find_pk t pk = PkMap.find_opt pk (view t).s_rows

(* ---- mutation plumbing ----

   [mutate t f] applies the pure store transform [f]. Under a held
   write lock (a Database transaction or a pre-locked XA submit) the
   result becomes the working store, published later by
   [commit_write]. Otherwise the statement auto-commits: lock, apply,
   publish, unlock — a failing transform leaves the table untouched. *)

let mutate t f =
  if holds_write t then begin
    let s = match t.working with Some s -> s | None -> t.published.v_store in
    let s', r = f s in
    t.working <- Some s';
    r
  end
  else begin
    lock_write t;
    Fun.protect
      ~finally:(fun () -> unlock_write t)
      (fun () ->
        let s', r = f t.published.v_store in
        t.working <- Some s';
        commit_write t;
        r)
  end

let check_row t row =
  if Array.length row <> List.length t.schema.columns then
    raise
      (Constraint_violation
         (Printf.sprintf "%s: row arity %d does not match schema arity %d"
            t.schema.tbl_name (Array.length row)
            (List.length t.schema.columns)));
  List.iteri
    (fun i c ->
      let v = row.(i) in
      if v = Value.Null && not c.nullable then
        raise
          (Constraint_violation
             (Printf.sprintf "%s.%s: NULL in non-nullable column"
                t.schema.tbl_name c.col_name));
      if not (Value.matches_type v c.col_type) then
        raise
          (Constraint_violation
             (Printf.sprintf "%s.%s: value %s does not match type %s"
                t.schema.tbl_name c.col_name (Value.sql_literal v)
                (Value.type_name c.col_type))))
    t.schema.columns

(* ---- secondary index maintenance (persistent) ---- *)

let index_key t cols row = List.map (fun c -> get row t c) cols

let sec_add t row sec =
  let pk = pk_of_row t row in
  List.map
    (fun (cols, m) ->
      let key = index_key t cols row in
      let l = match PkMap.find_opt key m with Some l -> l | None -> [] in
      (cols, PkMap.add key (pk :: l) m))
    sec

let sec_remove t row sec =
  let pk = pk_of_row t row in
  List.map
    (fun (cols, m) ->
      let key = index_key t cols row in
      match PkMap.find_opt key m with
      | Some l -> (
        match List.filter (fun p -> p <> pk) l with
        | [] -> (cols, PkMap.remove key m)
        | l' -> (cols, PkMap.add key l' m))
      | None -> (cols, m))
    sec

let store_add t s row =
  {
    s_rows = PkMap.add (pk_of_row t row) row s.s_rows;
    s_sec = sec_add t row s.s_sec;
  }

let store_remove t s row =
  {
    s_rows = PkMap.remove (pk_of_row t row) s.s_rows;
    s_sec = sec_remove t row s.s_sec;
  }

let create_index t cols =
  List.iter
    (fun c ->
      if not (Hashtbl.mem t.indices c) then
        invalid_arg
          (Printf.sprintf "%s: unknown index column %s" t.schema.tbl_name c))
    cols;
  mutate t (fun s ->
      if List.exists (fun (cs, _) -> cs = cols) s.s_sec then (s, ())
      else begin
        let m =
          PkMap.fold
            (fun pk row m ->
              let key = index_key t cols row in
              let l =
                match PkMap.find_opt key m with Some l -> l | None -> []
              in
              PkMap.add key (pk :: l) m)
            s.s_rows PkMap.empty
        in
        ({ s with s_sec = (cols, m) :: s.s_sec }, ())
      end)

let drop_indexes t = mutate t (fun s -> ({ s with s_sec = [] }, ()))
let indexed_columns t = List.map fst (view t).s_sec

let store_insert t s row =
  check_row t row;
  let pk = pk_of_row t row in
  if List.exists (Value.equal Value.Null) pk then
    raise
      (Constraint_violation
         (Printf.sprintf "%s: NULL in primary key" t.schema.tbl_name));
  if PkMap.mem pk s.s_rows then
    raise
      (Constraint_violation
         (Printf.sprintf "%s: duplicate primary key (%s)" t.schema.tbl_name
            (String.concat ", " (List.map Value.to_string pk))));
  store_add t s row

let insert t row = mutate t (fun s -> (store_insert t s row, ()))

let insert_named t pairs =
  let row =
    Array.of_list
      (List.map
         (fun c ->
           match List.assoc_opt c.col_name pairs with
           | Some v -> v
           | None -> Value.Null)
         t.schema.columns)
  in
  List.iter
    (fun (col, _) ->
      if not (Hashtbl.mem t.indices col) then
        raise
          (Constraint_violation
             (Printf.sprintf "%s: unknown column %s" t.schema.tbl_name col)))
    pairs;
  insert t row;
  row

(* ---- reads ---- *)

let scan_array v =
  match Atomic.get v.v_scan with
  | Some a -> a
  | None ->
    let a = Array.of_seq (Seq.map snd (PkMap.to_seq v.v_store.s_rows)) in
    Atomic.set v.v_scan (Some a);
    a

let store_rows s = List.map snd (PkMap.bindings s.s_rows)

let scan t =
  let rows = store_rows (view t) in
  Instr.bump t.instr ~n:(List.length rows) Instr.K.rows_scanned;
  Instr.bump t.instr ~n:(List.length rows) Instr.K.rows_fetched;
  rows

(* Resolve the read view for a cursor: a writer scanning its own
   working store materializes it (rare — only mid-transaction reads);
   every other open pins the resolved version so GC leaves it alone
   until the cursor is done, and the cursor walks the version's row
   array directly — no per-open row copy. *)
type cursor_view = Cv_store of store | Cv_version of version

let cursor_view t =
  if holds_write t && t.working <> None then Cv_store (Option.get t.working)
  else
    match !(Domain.DLS.get ambient_key) with
    | Some snap -> (
      match Hashtbl.find_opt snap.sn_entries t.uid with
      | Some (_, v) ->
        pin t v;
        Cv_version v
      | None -> Cv_version (pin_published t))
    | None -> Cv_version (pin_published t)

let scan_cursor t =
  match cursor_view t with
  | Cv_store s ->
    let rest = ref (store_rows s) in
    Xdm.Cursor.make ~pure:true ~instr:t.instr (fun () ->
        match !rest with
        | [] -> None
        | row :: tl ->
          rest := tl;
          Instr.bump t.instr Instr.K.rows_scanned;
          Instr.bump t.instr Instr.K.rows_fetched;
          Some row)
  | Cv_version v ->
    let arr = scan_array v in
    let i = ref 0 in
    Xdm.Cursor.make ~pure:true ~instr:t.instr
      ~cleanup:(fun () -> unpin t v)
      (fun () ->
        if !i >= Array.length arr then None
        else begin
          let row = arr.(!i) in
          incr i;
          Instr.bump t.instr Instr.K.rows_scanned;
          Instr.bump t.instr Instr.K.rows_fetched;
          Some row
        end)

(* columns constrained by equality in a conjunctive prefix of the
   predicate *)
let rec eq_bindings = function
  | Pred.Cmp (Pred.Eq, col, v) -> [ (col, v) ]
  | Pred.And (a, b) -> eq_bindings a @ eq_bindings b
  | _ -> []

(* index-probe candidates, or None when no index covers the predicate *)
let probe t s pred =
  let eqs = eq_bindings pred in
  List.find_map
    (fun (cols, m) ->
      match
        List.fold_left
          (fun acc c ->
            match (acc, List.assoc_opt c eqs) with
            | Some key, Some v -> Some (v :: key)
            | _ -> None)
          (Some []) (List.rev cols)
      with
      | Some key -> (
        match PkMap.find_opt key m with
        | Some pks ->
          Some
            (List.sort
               (fun a b -> compare (pk_of_row t a) (pk_of_row t b))
               (List.filter_map
                  (fun pk -> PkMap.find_opt pk s.s_rows)
                  pks))
        | None -> Some [])
      | None -> None)
    s.s_sec

let store_select t s pred =
  let result =
    match probe t s pred with
    | Some rows ->
      (* index probe: only the candidate rows are examined *)
      Instr.bump t.instr ~n:(List.length rows) Instr.K.rows_scanned;
      List.filter (fun row -> Pred.eval ~get:(fun c -> get row t c) pred) rows
    | None ->
      Instr.bump t.instr ~n:(PkMap.cardinal s.s_rows) Instr.K.rows_scanned;
      List.filter
        (fun row -> Pred.eval ~get:(fun c -> get row t c) pred)
        (store_rows s)
  in
  Instr.bump t.instr ~n:(List.length result) Instr.K.rows_fetched;
  result

let select t pred = store_select t (view t) pred

(* Cursor variant of [select]: the plan choice (index probe vs full
   scan) happens at open against the pinned version; each pull examines
   candidates until one satisfies the predicate, bumping [rows.scanned]
   per candidate examined and [rows.fetched] per row produced. *)
let select_cursor t pred =
  (* pulls are pure only when the predicate cannot raise mid-stream,
     i.e. every column it mentions resolves against the schema *)
  let rec cols = function
    | Pred.True | Pred.False -> []
    | Pred.Cmp (_, c, _) | Pred.In (c, _) | Pred.Is_null c -> [ c ]
    | Pred.And (a, b) | Pred.Or (a, b) -> cols a @ cols b
    | Pred.Not a -> cols a
  in
  let pure = List.for_all (fun c -> Hashtbl.mem t.indices c) (cols pred) in
  let pull_of_list rest () =
    let rec go () =
      match !rest with
      | [] -> None
      | row :: tl ->
        rest := tl;
        Instr.bump t.instr Instr.K.rows_scanned;
        if Pred.eval ~get:(fun c -> get row t c) pred then begin
          Instr.bump t.instr Instr.K.rows_fetched;
          Some row
        end
        else go ()
    in
    go ()
  in
  match cursor_view t with
  | Cv_store s ->
    let rest =
      ref (match probe t s pred with Some rows -> rows | None -> store_rows s)
    in
    Xdm.Cursor.make ~pure ~instr:t.instr (pull_of_list rest)
  | Cv_version v -> (
    let cleanup () = unpin t v in
    match probe t v.v_store pred with
    | Some rows ->
      let rest = ref rows in
      Xdm.Cursor.make ~pure ~instr:t.instr ~cleanup (pull_of_list rest)
    | None ->
      (* full scan: walk the version's row array in place *)
      let arr = scan_array v in
      let i = ref 0 in
      let rec pull () =
        if !i >= Array.length arr then None
        else begin
          let row = arr.(!i) in
          incr i;
          Instr.bump t.instr Instr.K.rows_scanned;
          if Pred.eval ~get:(fun c -> get row t c) pred then begin
            Instr.bump t.instr Instr.K.rows_fetched;
            Some row
          end
          else pull ()
        end
      in
      Xdm.Cursor.make ~pure ~instr:t.instr ~cleanup pull)

(* ---- writes ---- *)

let store_update t s pred set =
  List.iter
    (fun (col, _) ->
      if not (Hashtbl.mem t.indices col) then
        raise
          (Constraint_violation
             (Printf.sprintf "%s: unknown column %s" t.schema.tbl_name col)))
    set;
  let matching = store_select t s pred in
  let olds = List.map Array.copy matching in
  let news =
    List.map
      (fun row ->
        let updated = Array.copy row in
        List.iter (fun (col, v) -> updated.(col_index t col) <- v) set;
        check_row t updated;
        updated)
      matching
  in
  (* validate the re-keying up front so a collision leaves the store
     untouched *)
  let old_pks = List.map (pk_of_row t) matching in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun row ->
      let pk = pk_of_row t row in
      if List.exists (Value.equal Value.Null) pk then
        raise
          (Constraint_violation
             (Printf.sprintf "%s: NULL in primary key" t.schema.tbl_name));
      if Hashtbl.mem seen pk then
        raise
          (Constraint_violation
             (Printf.sprintf "%s: duplicate primary key after update"
                t.schema.tbl_name));
      Hashtbl.add seen pk ();
      if (not (List.mem pk old_pks)) && PkMap.mem pk s.s_rows then
        raise
          (Constraint_violation
             (Printf.sprintf "%s: primary key update collides with row (%s)"
                t.schema.tbl_name
                (String.concat ", " (List.map Value.to_string pk)))))
    news;
  let s = List.fold_left (fun s row -> store_remove t s row) s matching in
  let s = List.fold_left (fun s row -> store_add t s row) s news in
  (s, (olds, news))

let update_rows t pred set = mutate t (fun s -> store_update t s pred set)

let delete_rows t pred =
  mutate t (fun s ->
      let matching = store_select t s pred in
      let s =
        List.fold_left (fun s row -> store_remove t s row) s matching
      in
      (s, matching))

let clear t =
  mutate t (fun s ->
      ( {
          s_rows = PkMap.empty;
          s_sec = List.map (fun (cols, _) -> (cols, PkMap.empty)) s.s_sec;
        },
        () ))

(* ---- introspection ---- *)

let current_version t = t.published.v_id
let live_versions t = Hashtbl.length t.vmeta

let lock_info t =
  Mutex.lock t.m;
  let r = (t.writer, t.waiters) in
  Mutex.unlock t.m;
  r
