type column = { col_name : string; col_type : Value.col_type; nullable : bool }

type foreign_key = {
  fk_columns : string list;
  fk_ref_table : string;
  fk_ref_columns : string list;
}

type schema = {
  tbl_name : string;
  columns : column list;
  primary_key : string list;
  foreign_keys : foreign_key list;
}

type row = Value.t array

exception Constraint_violation of string

type t = {
  schema : schema;
  indices : (string, int) Hashtbl.t;
  rows : (Value.t list, row) Hashtbl.t;
  (* secondary hash indexes: column list -> (key values -> pk list) *)
  mutable sec_indexes : (string list * (Value.t list, Value.t list list) Hashtbl.t) list;
  mutable instr : Instr.t;
}

let create schema =
  if schema.primary_key = [] then
    invalid_arg
      (Printf.sprintf "table %s must have a primary key" schema.tbl_name);
  let indices = Hashtbl.create 8 in
  List.iteri
    (fun i c -> Hashtbl.replace indices c.col_name i)
    schema.columns;
  List.iter
    (fun k ->
      if not (Hashtbl.mem indices k) then
        invalid_arg
          (Printf.sprintf "table %s: unknown primary key column %s"
             schema.tbl_name k))
    schema.primary_key;
  {
    schema;
    indices;
    rows = Hashtbl.create 64;
    sec_indexes = [];
    instr = Instr.disabled;
  }

let schema t = t.schema
let name t = t.schema.tbl_name
let set_instr t i = t.instr <- i

let col_index t col =
  match Hashtbl.find_opt t.indices col with
  | Some i -> i
  | None -> raise Not_found

let get row t col = row.(col_index t col)
let pk_of_row t row = List.map (fun k -> get row t k) t.schema.primary_key
let row_count t = Hashtbl.length t.rows

let check_row t row =
  if Array.length row <> List.length t.schema.columns then
    raise
      (Constraint_violation
         (Printf.sprintf "%s: row arity %d does not match schema arity %d"
            t.schema.tbl_name (Array.length row)
            (List.length t.schema.columns)));
  List.iteri
    (fun i c ->
      let v = row.(i) in
      if v = Value.Null && not c.nullable then
        raise
          (Constraint_violation
             (Printf.sprintf "%s.%s: NULL in non-nullable column"
                t.schema.tbl_name c.col_name));
      if not (Value.matches_type v c.col_type) then
        raise
          (Constraint_violation
             (Printf.sprintf "%s.%s: value %s does not match type %s"
                t.schema.tbl_name c.col_name (Value.sql_literal v)
                (Value.type_name c.col_type))))
    t.schema.columns

(* ---- secondary index maintenance ---- *)

let index_key t cols row = List.map (fun c -> get row t c) cols

let index_add t row =
  let pk = pk_of_row t row in
  List.iter
    (fun (cols, tbl) ->
      let key = index_key t cols row in
      Hashtbl.replace tbl key
        (pk :: (match Hashtbl.find_opt tbl key with Some l -> l | None -> [])))
    t.sec_indexes

let index_remove t row =
  let pk = pk_of_row t row in
  List.iter
    (fun (cols, tbl) ->
      let key = index_key t cols row in
      match Hashtbl.find_opt tbl key with
      | Some l -> (
        match List.filter (fun p -> p <> pk) l with
        | [] -> Hashtbl.remove tbl key
        | l' -> Hashtbl.replace tbl key l')
      | None -> ())
    t.sec_indexes

let create_index t cols =
  List.iter
    (fun c ->
      if not (Hashtbl.mem t.indices c) then
        invalid_arg (Printf.sprintf "%s: unknown index column %s" t.schema.tbl_name c))
    cols;
  if not (List.exists (fun (cs, _) -> cs = cols) t.sec_indexes) then begin
    let tbl = Hashtbl.create 64 in
    Hashtbl.iter
      (fun pk row ->
        let key = List.map (fun c -> get row t c) cols in
        Hashtbl.replace tbl key
          (pk :: (match Hashtbl.find_opt tbl key with Some l -> l | None -> [])))
      t.rows;
    t.sec_indexes <- (cols, tbl) :: t.sec_indexes
  end

let drop_indexes t = t.sec_indexes <- []
let indexed_columns t = List.map fst t.sec_indexes

let insert t row =
  check_row t row;
  let pk = pk_of_row t row in
  if List.exists (Value.equal Value.Null) pk then
    raise
      (Constraint_violation
         (Printf.sprintf "%s: NULL in primary key" t.schema.tbl_name));
  if Hashtbl.mem t.rows pk then
    raise
      (Constraint_violation
         (Printf.sprintf "%s: duplicate primary key (%s)" t.schema.tbl_name
            (String.concat ", " (List.map Value.to_string pk))));
  Hashtbl.replace t.rows pk row;
  index_add t row

let insert_named t pairs =
  let row =
    Array.of_list
      (List.map
         (fun c ->
           match List.assoc_opt c.col_name pairs with
           | Some v -> v
           | None -> Value.Null)
         t.schema.columns)
  in
  List.iter
    (fun (col, _) ->
      if not (Hashtbl.mem t.indices col) then
        raise
          (Constraint_violation
             (Printf.sprintf "%s: unknown column %s" t.schema.tbl_name col)))
    pairs;
  insert t row;
  row

let find_pk t pk = Hashtbl.find_opt t.rows pk

let scan_rows t =
  let all = Hashtbl.fold (fun _ row acc -> row :: acc) t.rows [] in
  List.sort
    (fun a b -> compare (pk_of_row t a) (pk_of_row t b))
    all

let scan t =
  let rows = scan_rows t in
  Instr.bump t.instr ~n:(List.length rows) Instr.K.rows_scanned;
  Instr.bump t.instr ~n:(List.length rows) Instr.K.rows_fetched;
  rows

(* Cursor variant: the row set is snapshotted at open (rows are
   immutable arrays — updates replace, never mutate, so a snapshot
   stays consistent), and [rows.scanned]/[rows.fetched] count actual
   pulls rather than the full table size. Pulls are pure: the snapshot
   is taken, nothing left to run can raise. *)
let scan_cursor t =
  let rest = ref (scan_rows t) in
  Xdm.Cursor.make ~pure:true ~instr:t.instr (fun () ->
      match !rest with
      | [] -> None
      | row :: tl ->
        rest := tl;
        Instr.bump t.instr Instr.K.rows_scanned;
        Instr.bump t.instr Instr.K.rows_fetched;
        Some row)

(* columns constrained by equality in a conjunctive prefix of the
   predicate *)
let rec eq_bindings = function
  | Pred.Cmp (Pred.Eq, col, v) -> [ (col, v) ]
  | Pred.And (a, b) -> eq_bindings a @ eq_bindings b
  | _ -> []

let select t pred =
  let eqs = eq_bindings pred in
  let candidates =
    List.find_map
      (fun (cols, tbl) ->
        match
          List.fold_left
            (fun acc c ->
              match (acc, List.assoc_opt c eqs) with
              | Some key, Some v -> Some (v :: key)
              | _ -> None)
            (Some []) (List.rev cols)
        with
        | Some key -> (
          match Hashtbl.find_opt tbl key with
          | Some pks -> Some (List.filter_map (Hashtbl.find_opt t.rows) pks)
          | None -> Some [])
        | None -> None)
      t.sec_indexes
  in
  let result =
    match candidates with
    | Some rows ->
      (* index probe: only the candidate rows are examined *)
      Instr.bump t.instr ~n:(List.length rows) Instr.K.rows_scanned;
      List.filter (fun row -> Pred.eval ~get:(fun c -> get row t c) pred)
        (List.sort (fun a b -> compare (pk_of_row t a) (pk_of_row t b)) rows)
    | None ->
      Instr.bump t.instr ~n:(Hashtbl.length t.rows) Instr.K.rows_scanned;
      List.filter
        (fun row -> Pred.eval ~get:(fun c -> get row t c) pred)
        (scan_rows t)
  in
  Instr.bump t.instr ~n:(List.length result) Instr.K.rows_fetched;
  result

(* Cursor variant of [select]: candidates are snapshotted at open (index
   probe or full scan, same plan choice as [select]); each pull examines
   candidates until one satisfies the predicate, bumping [rows.scanned]
   per candidate examined and [rows.fetched] per row produced. *)
let select_cursor t pred =
  let eqs = eq_bindings pred in
  let candidates =
    List.find_map
      (fun (cols, tbl) ->
        match
          List.fold_left
            (fun acc c ->
              match (acc, List.assoc_opt c eqs) with
              | Some key, Some v -> Some (v :: key)
              | _ -> None)
            (Some []) (List.rev cols)
        with
        | Some key -> (
          match Hashtbl.find_opt tbl key with
          | Some pks -> Some (List.filter_map (Hashtbl.find_opt t.rows) pks)
          | None -> Some [])
        | None -> None)
      t.sec_indexes
  in
  let rest =
    ref
      (match candidates with
      | Some rows ->
        List.sort (fun a b -> compare (pk_of_row t a) (pk_of_row t b)) rows
      | None -> scan_rows t)
  in
  let rec pull () =
    match !rest with
    | [] -> None
    | row :: tl ->
      rest := tl;
      Instr.bump t.instr Instr.K.rows_scanned;
      if Pred.eval ~get:(fun c -> get row t c) pred then begin
        Instr.bump t.instr Instr.K.rows_fetched;
        Some row
      end
      else pull ()
  in
  (* pulls are pure only when the predicate cannot raise mid-stream,
     i.e. every column it mentions resolves against the schema *)
  let rec cols = function
    | Pred.True | Pred.False -> []
    | Pred.Cmp (_, c, _) | Pred.In (c, _) | Pred.Is_null c -> [ c ]
    | Pred.And (a, b) | Pred.Or (a, b) -> cols a @ cols b
    | Pred.Not a -> cols a
  in
  let pure =
    List.for_all (fun c -> Hashtbl.mem t.indices c) (cols pred)
  in
  Xdm.Cursor.make ~pure ~instr:t.instr pull

let update_rows t pred set =
  (* validate set columns *)
  List.iter
    (fun (col, _) ->
      if not (Hashtbl.mem t.indices col) then
        raise
          (Constraint_violation
             (Printf.sprintf "%s: unknown column %s" t.schema.tbl_name col)))
    set;
  let matching = select t pred in
  let olds = List.map Array.copy matching in
  let news =
    List.map
      (fun row ->
        let updated = Array.copy row in
        List.iter (fun (col, v) -> updated.(col_index t col) <- v) set;
        check_row t updated;
        updated)
      matching
  in
  (* validate the re-keying up front so a collision leaves the table
     untouched *)
  let old_pks = List.map (pk_of_row t) matching in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun row ->
      let pk = pk_of_row t row in
      if List.exists (Value.equal Value.Null) pk then
        raise
          (Constraint_violation
             (Printf.sprintf "%s: NULL in primary key" t.schema.tbl_name));
      if Hashtbl.mem seen pk then
        raise
          (Constraint_violation
             (Printf.sprintf "%s: duplicate primary key after update"
                t.schema.tbl_name));
      Hashtbl.add seen pk ();
      if (not (List.mem pk old_pks)) && Hashtbl.mem t.rows pk then
        raise
          (Constraint_violation
             (Printf.sprintf "%s: primary key update collides with row (%s)"
                t.schema.tbl_name
                (String.concat ", " (List.map Value.to_string pk)))))
    news;
  List.iter
    (fun row ->
      index_remove t row;
      Hashtbl.remove t.rows (pk_of_row t row))
    matching;
  List.iter
    (fun row ->
      Hashtbl.replace t.rows (pk_of_row t row) row;
      index_add t row)
    news;
  (olds, news)

let delete_rows t pred =
  let matching = select t pred in
  List.iter
    (fun row ->
      index_remove t row;
      Hashtbl.remove t.rows (pk_of_row t row))
    matching;
  matching

let clear t =
  Hashtbl.reset t.rows;
  List.iter (fun (_, tbl) -> Hashtbl.reset tbl) t.sec_indexes
