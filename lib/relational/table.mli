(** Tables: schemas with primary/foreign keys and a multi-versioned
    (MVCC) in-memory row store. Constraint and type checking happen
    here; transaction scoping and SQL logging live in {!Database}.

    Every committed state of a table is an immutable {e version}
    (persistent maps, so versions share structure and publishing one is
    cheap). Readers resolve rows against the version that is current
    for them — the table's published head, or the version pinned by an
    ambient {!snapshot} captured at query start — so reads never block
    on writers and never observe a half-applied changeset. Writers take
    the table's write lock, accumulate changes in a private working
    store, and {e publish} a new version at commit; publication happens
    under a global (reentrant) publish lock so multi-table commits
    become visible atomically with respect to snapshot capture. *)

type column = { col_name : string; col_type : Value.col_type; nullable : bool }

type foreign_key = {
  fk_columns : string list;
  fk_ref_table : string;
  fk_ref_columns : string list;
}

type schema = {
  tbl_name : string;
  columns : column list;
  primary_key : string list;  (** nonempty *)
  foreign_keys : foreign_key list;
}

type row = Value.t array
(** One value per schema column, in order. *)

type t

exception Constraint_violation of string

val create : schema -> t
val schema : t -> schema
val name : t -> string

val set_instr : t -> Instr.t -> unit
(** Attach an instrumentation handle (default {!Instr.disabled}):
    {!scan} and {!select} report [rows.scanned] (rows examined — all of
    them on a scan, only index candidates on an index probe) and
    [rows.fetched] (rows returned); the MVCC machinery reports
    [mvcc.versions.live]/[mvcc.versions.collected] and
    [mvcc.lock.acquired]/[mvcc.lock.contended]. Usually propagated from
    {!Database.set_instr}. *)

val col_index : t -> string -> int
(** @raise Not_found for unknown columns. *)

val get : row -> t -> string -> Value.t
val pk_of_row : t -> row -> Value.t list
val row_count : t -> int

val insert : t -> row -> unit
(** @raise Constraint_violation on duplicate key, type mismatch, or NULL
    in a non-nullable column. Outside a held write lock the statement
    auto-commits (lock, apply, publish, unlock); under a held lock it
    accumulates in the working store until {!commit_write}. *)

val insert_named : t -> (string * Value.t) list -> row
(** Build a row from column/value pairs (missing nullable columns become
    [Null]) and insert it; returns the stored row. *)

val find_pk : t -> Value.t list -> row option
val scan : t -> row list
(** All rows, in primary-key order (deterministic). *)

val select : t -> Pred.t -> row list

val scan_cursor : t -> row Xdm.Cursor.t
(** Pull-based {!scan}: the cursor holds a pointer to the pinned
    immutable version current at open (no per-scan row copy) and
    [rows.scanned]/[rows.fetched] count actual pulls, so early-exit
    consumers touch only what they read. The version stays pinned —
    exempt from garbage collection — until the cursor is exhausted,
    closed or abandoned. The cursor is pure. *)

val select_cursor : t -> Pred.t -> row Xdm.Cursor.t
(** Pull-based {!select} with the same index-probe plan choice;
    [rows.scanned] counts candidates examined per pull, [rows.fetched]
    rows produced. Pins its version like {!scan_cursor}. *)

val update_rows : t -> Pred.t -> (string * Value.t) list -> row list * row list
(** [update_rows t where set] applies [set] to matching rows;
    returns [(old_copies, new_rows)].
    @raise Constraint_violation if a primary-key column is modified to a
    conflicting value or types mismatch. *)

val delete_rows : t -> Pred.t -> row list
(** Remove matching rows; returns the removed rows. *)

val clear : t -> unit

(** {1 Secondary indexes} *)

val create_index : t -> string list -> unit
(** Build (or keep) a hash index over the column list; {!select} uses it
    when the predicate constrains all indexed columns by equality, and
    all mutation paths maintain it. Indexes are part of the versioned
    store, so a reader pinned to an older version keeps its plan.
    @raise Invalid_argument on unknown columns. *)

val drop_indexes : t -> unit
val indexed_columns : t -> string list list

(** {1 Write locking}

    One writer per table. Coordinated writers (XA submits) pre-acquire
    their whole lockset in a deadlock-avoiding total order — sorted by
    [(database name, table name)] — before beginning work; see
    {!Decompose.execute}. Single-statement writers auto-commit. *)

val lock_write : t -> unit
(** Block until this domain holds the table's write lock. Bumps
    [mvcc.lock.acquired]; bumps [mvcc.lock.contended] when the lock was
    held by another domain on arrival. Not reentrant. *)

val unlock_write : t -> unit
(** Release the write lock (discarding any unpublished working store). *)

val holds_write : t -> bool
(** Does the current domain hold this table's write lock? *)

val commit_write : t -> unit
(** Publish the working store as a new version (no-op when nothing
    changed). Requires the write lock. The superseded version is
    garbage-collected once no snapshot or cursor pins it. *)

val discard_write : t -> unit
(** Drop the working store: uncommitted changes vanish. *)

val publish_all : (unit -> 'a) -> 'a
(** Run [f] holding the global publish lock (reentrant). Multi-table
    commits run their {!commit_write} calls inside it so the new
    versions become visible atomically: a concurrent {!snapshot} sees
    either all of them or none. *)

(** {1 Snapshots}

    A snapshot pins the published version of a set of tables,
    atomically with respect to {!publish_all} — the captured version
    vector can never straddle a multi-table commit. Reads performed
    while an ambient snapshot is installed resolve against the pinned
    versions, except that a domain holding a table's write lock always
    sees its own working store (read-your-own-writes), and publishing a
    version re-pins the publisher's own ambient entry to it. *)

type snapshot

val snapshot : t list -> snapshot
(** Capture and pin the published versions of [tables] (O(1) per table —
    no rows are copied). *)

val release : snapshot -> unit
(** Unpin; superseded versions with no remaining pins are collected. *)

val with_snapshot : t list -> (unit -> 'a) -> 'a
(** Install a fresh snapshot as the domain's ambient read context for
    the duration of [f]; reentrant — when an ambient snapshot is
    already installed, [f] runs under it unchanged. *)

val in_snapshot : unit -> bool
(** Is an ambient snapshot installed in the current domain? *)

val snapshot_find_pk : snapshot -> t -> Value.t list -> row option
(** Read a row from the version the snapshot pinned for [t] (the
    published head if [t] was not captured) — for checking cross-table
    invariants against one consistent cut regardless of the caller's
    ambient state. *)

(** {1 Introspection} *)

val current_version : t -> int
(** Id of the published version (0 for a freshly created table). *)

val view_version : t -> int
(** The version identity of the calling domain's read view: the
    ambient snapshot's pinned version when one covers [t], else the
    published head — or [-1] when this domain holds the write lock
    with uncommitted changes (a view with no version yet; the result
    cache bypasses on it rather than mislabel uncommitted data). *)

val live_versions : t -> int
(** Number of versions not yet collected (>= 1: the published head). *)

val lock_info : t -> int option * int
(** [(holder, waiters)]: the domain id holding the write lock, if any,
    and how many domains are blocked waiting for it. *)
