(** Tables: schemas with primary/foreign keys and the in-memory row
    store. Constraint and type checking happen here; transactional undo
    and SQL logging live in {!Database}. *)

type column = { col_name : string; col_type : Value.col_type; nullable : bool }

type foreign_key = {
  fk_columns : string list;
  fk_ref_table : string;
  fk_ref_columns : string list;
}

type schema = {
  tbl_name : string;
  columns : column list;
  primary_key : string list;  (** nonempty *)
  foreign_keys : foreign_key list;
}

type row = Value.t array
(** One value per schema column, in order. *)

type t

exception Constraint_violation of string

val create : schema -> t
val schema : t -> schema
val name : t -> string

val set_instr : t -> Instr.t -> unit
(** Attach an instrumentation handle (default {!Instr.disabled}):
    {!scan} and {!select} report [rows.scanned] (rows examined — all of
    them on a scan, only index candidates on an index probe) and
    [rows.fetched] (rows returned). Usually propagated from
    {!Database.set_instr}. *)

val col_index : t -> string -> int
(** @raise Not_found for unknown columns. *)

val get : row -> t -> string -> Value.t
val pk_of_row : t -> row -> Value.t list
val row_count : t -> int

val insert : t -> row -> unit
(** @raise Constraint_violation on duplicate key, type mismatch, or NULL
    in a non-nullable column. *)

val insert_named : t -> (string * Value.t) list -> row
(** Build a row from column/value pairs (missing nullable columns become
    [Null]) and insert it; returns the stored row. *)

val find_pk : t -> Value.t list -> row option
val scan : t -> row list
(** All rows, in primary-key order (deterministic). *)

val select : t -> Pred.t -> row list

val scan_cursor : t -> row Xdm.Cursor.t
(** Pull-based {!scan}: the row set is snapshotted at open and
    [rows.scanned]/[rows.fetched] count actual pulls, so early-exit
    consumers touch only what they read. The cursor is pure. *)

val select_cursor : t -> Pred.t -> row Xdm.Cursor.t
(** Pull-based {!select} with the same index-probe plan choice;
    [rows.scanned] counts candidates examined per pull, [rows.fetched]
    rows produced. *)

val update_rows : t -> Pred.t -> (string * Value.t) list -> row list * row list
(** [update_rows t where set] applies [set] to matching rows in place;
    returns [(old_copies, new_rows)].
    @raise Constraint_violation if a primary-key column is modified to a
    conflicting value or types mismatch. *)

val delete_rows : t -> Pred.t -> row list
(** Remove matching rows; returns the removed rows. *)

val clear : t -> unit

(** {1 Secondary indexes} *)

val create_index : t -> string list -> unit
(** Build (or keep) a hash index over the column list; {!select} uses it
    when the predicate constrains all indexed columns by equality, and
    all mutation paths maintain it.
    @raise Invalid_argument on unknown columns. *)

val drop_indexes : t -> unit
val indexed_columns : t -> string list list
