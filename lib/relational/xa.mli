(** XA-style two-phase commit across several databases.

    ALDSP runs an update call as one atomic transaction across all
    affected relational sources when they can participate in 2PC (paper
    section II.C). The coordinator begins a local transaction on every
    participant, runs the work, then prepares each participant (which may
    fail via injection) and commits all or rolls back all.

    The prepare and commit phases run {!Resilience.Deadline.exempt}:
    once the first participant votes, the round reaches its
    commit-or-rollback decision regardless of the requesting client's
    end-to-end deadline — a write is never killed mid-commit. *)

type outcome =
  | Committed
  | Aborted of string  (** rollback reason *)

val run : Database.t list -> (unit -> 'a) -> ('a, string) result
(** [run participants work] — on success every participant is committed
    and [Ok result] returned; on any failure (exception from [work], a
    statement failure, or a prepare failure) every participant is rolled
    back and [Error reason] returned. *)

type trace_event =
  | Begin of string
  | Prepare_ok of string
  | Prepare_failed of string
  | Commit of string
  | Rollback of string

val run_traced :
  Database.t list -> (unit -> 'a) -> ('a, string) result * trace_event list
(** Like {!run} but also returns the coordinator's event trace (for tests
    and the XA bench). Every participant votes in the prepare phase —
    each emits a [Prepare_ok]/[Prepare_failed] event before the
    coordinator decides — and injected commit faults are retried so a
    fully prepared round always commits everywhere. *)
