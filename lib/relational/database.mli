(** A named database: tables, DML execution with SQL logging, local
    transactions over the tables' MVCC working stores, foreign-key
    enforcement, and the failure-injection hooks used by the XA tests
    and benches. *)

type dml =
  | Insert of { table : string; columns : string list; values : Value.t list }
  | Update of { table : string; set : (string * Value.t) list; where : Pred.t }
  | Delete of { table : string; where : Pred.t }

val dml_to_sql : dml -> string

exception Db_error of string

type t

val create : string -> t
val name : t -> string

val set_instr : t -> Instr.t -> unit
(** Attach an instrumentation handle (default {!Instr.disabled}) and
    propagate it to every table, current and future: {!exec} reports
    [sql.executed], tables report [rows.scanned]/[rows.fetched]. *)

val add_table : t -> Table.schema -> Table.t
val table : t -> string -> Table.t
(** @raise Db_error for unknown tables. *)

val tables : t -> Table.t list
val catalog : t -> Table.schema list
(** Schemas, for introspection. *)

(** {1 DML} *)

val exec : t -> dml -> int
(** Execute one statement: returns the number of affected rows, appends
    the SQL text to the log, and enforces foreign keys. Inside a
    transaction the changes accumulate in the target table's working
    store (the statement locks the table on first write); outside one
    the statement runs as its own lock–apply–publish transaction, so a
    failure leaves the published version untouched.
    @raise Db_error (wrapping constraint violations) on failure. *)

val select : t -> string -> Pred.t -> Table.row list
(** Query rows (not logged — reads are served to the engine directly). *)

val with_snapshot : t -> (unit -> 'a) -> 'a
(** Run [f] with an ambient snapshot pinning every table of this
    database at one consistent cut (see {!Table.with_snapshot}). *)

val read_check : t -> unit
(** Consult the fault state for a query-path read (the dataspace calls
    this before serving a scan). Plan-scheduled transients and hard-down
    windows fire here; the legacy ad-hoc one-shots do not.
    @raise Db_error when an injected fault fires. *)

val sql_log : t -> string list
(** All SQL statements executed so far, oldest first. *)

val clear_log : t -> unit
val log_size : t -> int

(** {1 Transactions} *)

val begin_tx : t -> unit
(** @raise Db_error if a transaction is already open. *)

val commit : t -> unit
(** Publish every written table's new version (atomically with respect
    to snapshot capture) and release the locks this transaction took.
    An injected commit fault raises [Db_error] but leaves the
    transaction open: a prepared participant stays prepared, so the XA
    coordinator can retry the commit. *)

val rollback : t -> unit
val in_tx : t -> bool

(** {1 Failure injection}

    All injection state lives in a {!Resilience.Faults.t} owned by the
    database; the legacy setters below delegate to it. *)

val faults : t -> Resilience.Faults.t
(** The database's fault handle — attach it to a
    [Resilience.Control.t] to put the source under a chaos plan. *)

val prepare_fault : t -> string option
(** Consult the fault state for an XA prepare round (sticky flag or
    plan schedule); [Some reason] means this participant fails to
    prepare. Used by the XA coordinator. *)

val set_fail_on_prepare : t -> bool -> unit
val fail_on_prepare : t -> bool
val set_fail_statements_after : t -> int option -> unit
(** [Some n]: the [n+1]-th subsequent {!exec} raises [Db_error]. *)
