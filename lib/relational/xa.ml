type outcome = Committed | Aborted of string

type trace_event =
  | Begin of string
  | Prepare_ok of string
  | Prepare_failed of string
  | Commit of string
  | Rollback of string

let run_traced participants work =
  let trace = ref [] in
  let emit e = trace := e :: !trace in
  let rollback_all () =
    List.iter
      (fun db ->
        if Database.in_tx db then begin
          Database.rollback db;
          emit (Rollback (Database.name db))
        end)
      participants
  in
  let result =
    try
      List.iter
        (fun db ->
          Database.begin_tx db;
          emit (Begin (Database.name db)))
        participants;
      let v = work () in
      (* from the first prepare vote on, the round runs exempt from the
         ambient request deadline: a prepared participant must reach a
         commit-or-rollback decision, and killing the coordinator here
         on client impatience would manufacture the very partial commit
         2PC exists to prevent *)
      Resilience.Deadline.exempt @@ fun () ->
      (* phase 1: every participant votes — all emit a Prepare_* event
         before the coordinator decides, as a real 2PC round would *)
      let failures =
        List.filter_map
          (fun db ->
            match Database.prepare_fault db with
            | Some reason ->
              emit (Prepare_failed (Database.name db));
              Some (Printf.sprintf "%s: %s" (Database.name db) reason)
            | None ->
              emit (Prepare_ok (Database.name db));
              None)
          participants
      in
      match failures with
      | reason :: _ ->
        rollback_all ();
        Error reason
      | [] ->
        (* phase 2: commit. A prepared participant must eventually
           commit, so injected commit faults are retried (the plan never
           schedules more than two in a row). The whole phase runs under
           the global publish lock so the new versions of every
           participant become visible as one cut — a concurrent
           snapshot sees the entire cross-database changeset or none of
           it. *)
        Table.publish_all (fun () ->
            List.iter
              (fun db ->
                let rec commit_retry attempts =
                  match Database.commit db with
                  | () -> emit (Commit (Database.name db))
                  | exception Database.Db_error _ when attempts < 8 ->
                    commit_retry (attempts + 1)
                in
                commit_retry 0)
              participants);
        Ok v
    with
    | Database.Db_error msg ->
      rollback_all ();
      Error msg
    | e ->
      rollback_all ();
      raise e
  in
  (result, List.rev !trace)

let run participants work = fst (run_traced participants work)

