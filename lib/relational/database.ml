type dml =
  | Insert of { table : string; columns : string list; values : Value.t list }
  | Update of { table : string; set : (string * Value.t) list; where : Pred.t }
  | Delete of { table : string; where : Pred.t }

let dml_to_sql = function
  | Insert { table; columns; values } ->
    Printf.sprintf "INSERT INTO %s (%s) VALUES (%s)" table
      (String.concat ", " columns)
      (String.concat ", " (List.map Value.sql_literal values))
  | Update { table; set; where } ->
    Printf.sprintf "UPDATE %s SET %s WHERE %s" table
      (String.concat ", "
         (List.map
            (fun (c, v) -> Printf.sprintf "%s = %s" c (Value.sql_literal v))
            set))
      (Pred.to_sql where)
  | Delete { table; where } ->
    Printf.sprintf "DELETE FROM %s WHERE %s" table (Pred.to_sql where)

exception Db_error of string

type t = {
  db_name : string;
  tbls : (string, Table.t) Hashtbl.t;
  mutable order : string list;  (* table creation order *)
  mutable log : string list;  (* newest first *)
  (* open transaction: the tables it has written, each tagged with
     whether the transaction acquired the write lock itself (a
     coordinator like Decompose pre-acquires ordered locksets, in which
     case the lock is not ours to release) *)
  mutable tx : (Table.t * bool) list option;
  faults : Resilience.Faults.t;  (* all failure injection lives here *)
  mutable instr : Instr.t;
}

let create name =
  {
    db_name = name;
    tbls = Hashtbl.create 8;
    order = [];
    log = [];
    tx = None;
    faults = Resilience.Faults.create ~source:name ();
    instr = Instr.disabled;
  }

let name t = t.db_name

let set_instr t i =
  t.instr <- i;
  Hashtbl.iter (fun _ tbl -> Table.set_instr tbl i) t.tbls

let add_table t schema =
  if Hashtbl.mem t.tbls schema.Table.tbl_name then
    raise (Db_error (Printf.sprintf "table %s already exists" schema.Table.tbl_name));
  let table = Table.create schema in
  Table.set_instr table t.instr;
  Hashtbl.replace t.tbls schema.Table.tbl_name table;
  t.order <- t.order @ [ schema.Table.tbl_name ];
  table

let table t name =
  match Hashtbl.find_opt t.tbls name with
  | Some tbl -> tbl
  | None -> raise (Db_error (Printf.sprintf "%s: unknown table %s" t.db_name name))

let tables t = List.map (fun n -> Hashtbl.find t.tbls n) t.order
let catalog t = List.map Table.schema (tables t)
let sql_log t = List.rev t.log
let clear_log t = t.log <- []
let log_size t = List.length t.log

(* A statement's target table joins the open transaction on first
   write: lock it (unless a coordinator already holds it for us) so the
   changes accumulate in the table's working store until commit. Locks
   are taken lazily in statement order — concurrent multi-table writers
   must pre-acquire their locksets in the global (db, table) order, as
   {!Decompose.execute} does. *)
let ensure_tx_table t tbl =
  match t.tx with
  | None -> ()
  | Some entries ->
    if not (List.exists (fun (tb, _) -> tb == tbl) entries) then begin
      let owned = not (Table.holds_write tbl) in
      if owned then Table.lock_write tbl;
      t.tx <- Some ((tbl, owned) :: entries)
    end

let faults t = t.faults

(* Consult the fault state; an injected fault surfaces as the database's
   native [Db_error], prefixed with the db name. *)
let consult t kind =
  let v = Resilience.Faults.on_call t.faults kind in
  match v.Resilience.Faults.v_fault with
  | Some f ->
    Instr.bump t.instr Instr.K.resil_injected;
    raise
      (Db_error
         (Printf.sprintf "%s: %s" t.db_name f.Resilience.Faults.f_message))
  | None -> ()

let read_check t = consult t Resilience.Faults.Read

(* FK checks: inserts must reference existing rows; deletes must not be
   referenced. *)
let check_fk_insert t tbl row =
  List.iter
    (fun fk ->
      let ref_tbl = table t fk.Table.fk_ref_table in
      let vals = List.map (fun c -> Table.get row tbl c) fk.Table.fk_columns in
      if not (List.exists (Value.equal Value.Null) vals) then begin
        let pred =
          Pred.conj (List.map2 Pred.eq fk.Table.fk_ref_columns vals)
        in
        if Table.select ref_tbl pred = [] then
          raise
            (Db_error
               (Printf.sprintf
                  "%s: foreign key violation on %s(%s) -> %s(%s)" t.db_name
                  (Table.name tbl)
                  (String.concat "," fk.Table.fk_columns)
                  fk.Table.fk_ref_table
                  (String.concat "," fk.Table.fk_ref_columns)))
      end)
    (Table.schema tbl).Table.foreign_keys

let check_fk_delete t tbl rows =
  (* any other table referencing this one must not point at these rows *)
  Hashtbl.iter
    (fun _ other ->
      List.iter
        (fun fk ->
          if fk.Table.fk_ref_table = Table.name tbl then
            List.iter
              (fun row ->
                let vals =
                  List.map (fun c -> Table.get row tbl c) fk.Table.fk_ref_columns
                in
                let pred =
                  Pred.conj (List.map2 Pred.eq fk.Table.fk_columns vals)
                in
                if Table.select other pred <> [] then
                  raise
                    (Db_error
                       (Printf.sprintf
                          "%s: cannot delete from %s: row referenced by %s"
                          t.db_name (Table.name tbl) (Table.name other))))
              rows)
        (Table.schema other).Table.foreign_keys)
    t.tbls

let exec t dml =
  consult t Resilience.Faults.Statement;
  Instr.bump t.instr Instr.K.sql_executed;
  let sql = dml_to_sql dml in
  let tn =
    match dml with
    | Insert { table; _ } | Update { table; _ } | Delete { table; _ } -> table
  in
  let tbl = table t tn in
  let run () =
    try
      match dml with
      | Insert { table = tn; columns; values } ->
        if List.length columns <> List.length values then
          raise (Db_error (Printf.sprintf "%s: INSERT arity mismatch" tn));
        let row = Table.insert_named tbl (List.combine columns values) in
        check_fk_insert t tbl row;
        1
      | Update { set; where; _ } ->
        let _olds, news = Table.update_rows tbl where set in
        List.length news
      | Delete { where; _ } ->
        let victims = Table.select tbl where in
        check_fk_delete t tbl victims;
        let removed = Table.delete_rows tbl where in
        List.length removed
    with Table.Constraint_violation msg -> raise (Db_error msg)
  in
  let affected =
    match t.tx with
    | Some _ ->
      (* changes accumulate in the table's working store until commit *)
      ensure_tx_table t tbl;
      run ()
    | None ->
      if Table.holds_write tbl then
        (* a caller-held lock coordinates publication *)
        run ()
      else begin
        (* single-statement transaction: lock, apply, publish on
           success — a mid-statement failure (FK violation included)
           leaves the published version untouched *)
        Table.lock_write tbl;
        Fun.protect
          ~finally:(fun () -> Table.unlock_write tbl)
          (fun () ->
            match run () with
            | n ->
              Table.commit_write tbl;
              n
            | exception e ->
              Table.discard_write tbl;
              raise e)
      end
  in
  t.log <- sql :: t.log;
  affected

let select t tn pred = Table.select (table t tn) pred

let with_snapshot t f = Table.with_snapshot (tables t) f

let in_tx t = t.tx <> None

let begin_tx t =
  if in_tx t then raise (Db_error (t.db_name ^ ": transaction already open"));
  t.tx <- Some []

let commit t =
  match t.tx with
  | None -> raise (Db_error (t.db_name ^ ": no open transaction"))
  | Some entries -> (
    (* an injected commit fault leaves the transaction open — working
       stores and locks intact: a prepared participant stays prepared
       and the coordinator may retry *)
    match Resilience.Faults.on_commit t.faults with
    | Some f ->
      Instr.bump t.instr Instr.K.resil_injected;
      raise
        (Db_error
           (Printf.sprintf "%s: %s" t.db_name f.Resilience.Faults.f_message))
    | None ->
      (* publish every written table's new version atomically with
         respect to snapshot capture (the lock is reentrant, so an XA
         coordinator can hold it across all participants) *)
      Table.publish_all (fun () ->
          List.iter (fun (tb, _) -> Table.commit_write tb) entries);
      List.iter (fun (tb, owned) -> if owned then Table.unlock_write tb) entries;
      t.tx <- None)

let rollback t =
  match t.tx with
  | None -> raise (Db_error (t.db_name ^ ": no open transaction"))
  | Some entries ->
    List.iter
      (fun (tb, owned) ->
        Table.discard_write tb;
        if owned then Table.unlock_write tb)
      entries;
    t.tx <- None;
    t.log <- Printf.sprintf "ROLLBACK -- %s" t.db_name :: t.log

let prepare_fault t =
  match Resilience.Faults.on_prepare t.faults with
  | Some f ->
    Instr.bump t.instr Instr.K.resil_injected;
    Some f.Resilience.Faults.f_message
  | None -> None

let set_fail_on_prepare t b = Resilience.Faults.set_fail_on_prepare t.faults b
let fail_on_prepare t = Resilience.Faults.fail_on_prepare t.faults
let set_fail_statements_after t n = Resilience.Faults.set_fail_after t.faults n
