(* aldsp-server — drive the CustomerProfile dataspace with a pool of
   concurrent worker domains under a seeded open-loop workload.

     aldsp-server --workers 4 --jobs 200          # closed-loop burst
     aldsp-server --rate 500 --jobs 1000          # open loop, 500 jobs/s
     aldsp-server --chaos-seed 7 --stats          # under a fault plan
     aldsp-server --cache --stats                 # with the result cache
     aldsp-server --deadline-ms 250 --shed \
                  --overload-factor 3             # overload, shedding on
     aldsp-server --smoke                         # CI smoke contract *)

open Core

let parse_mix s =
  match String.split_on_char ':' s with
  | [ r; w; u ] -> (
    match (int_of_string_opt r, int_of_string_opt w, int_of_string_opt u) with
    | Some m_reads, Some m_scripts, Some m_submits
      when m_reads >= 0 && m_scripts >= 0 && m_submits >= 0
           && m_reads + m_scripts + m_submits > 0 ->
      Some { Server.Workload.m_reads; m_scripts; m_submits }
    | _ -> None)
  | _ -> None

let parse_brownout s =
  match String.split_on_char ':' s with
  | [ a; b ] -> (
    match (float_of_string_opt a, float_of_string_opt b) with
    | Some enter, Some exit_ when enter > 0. && exit_ >= 0. && exit_ < enter ->
      Some (enter, exit_)
    | _ -> None)
  | _ -> None

let build_env ~customers ~instr ~chaos () =
  let resilience =
    match chaos with
    | None -> None
    | Some (seed, profile) ->
      let ctl =
        Resilience.Control.create
          ~plan:(Resilience.Plan.make ~seed ~profile ())
          ~instr ()
      in
      List.iter
        (fun source ->
          Resilience.Control.set_policy ctl ~source
            (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
               ()))
        [ "db1"; "db2" ];
      Resilience.Control.set_policy ctl ~source:"CreditRatingService"
        (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
           ~breaker:Resilience.Breaker.default_config ());
      Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
      Some ctl
  in
  Fixtures.Customer_profile.make ~customers ~instr ?resilience ()

(* the cross-database pair every submit rewrites together — matched
   suffixes (or the seeded baseline) prove zero partial commits, the
   same invariant the chaos harness pins *)
let value_at tbl pk col =
  match Relational.Table.find_pk tbl pk with
  | Some row -> Relational.Table.get row tbl col
  | None -> Relational.Value.Null

let text = function Relational.Value.Text s -> s | v -> Relational.Value.to_string v

let source_pair env =
  ( text
      (value_at env.Fixtures.Customer_profile.customer
         [ Relational.Value.Text "007" ] "LAST_NAME"),
    text
      (value_at env.Fixtures.Customer_profile.credit_card
         [ Relational.Value.Int 900001 ] "CC_BRAND") )

let pair_consistent ~baseline (ln, br) =
  let suffix ~prefix s =
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      Some (String.sub s pl (String.length s - pl))
    else None
  in
  baseline = (ln, br)
  ||
  match (suffix ~prefix:"Name" ln, suffix ~prefix:"BRAND" br) with
  | Some k1, Some k2 -> k1 = k2
  | _ -> false

(* measure single-worker closed-loop capacity on a throwaway env (same
   mix and io cost, no chaos), so --overload-factor can offer a
   calibrated multiple of it *)
let measure_capacity ~mix ~io_ms ~submit_io_ms ~customers ~seed ~jobs =
  let instr = Instr.create () in
  let env = build_env ~customers ~instr ~chaos:None () in
  let session = Aldsp.Dataspace.session env.Fixtures.Customer_profile.ds in
  let work =
    Server.Workload.jobs ~mix ?io_ms ?submit_io_ms ~customers ~seed:(seed + 1)
      ~count:(min 80 (max 40 jobs)) env
  in
  (Server.Pool.run ~workers:1 ~session work).Server.Pool.r_qps

let main workers jobs rate io_ms submit_io_ms seed customers mix chaos_seed
    chaos_profile cache stats smoke deadline_ms queue_bound shed brownout
    overload_factor read_p99_bound =
  match (parse_mix mix, Option.map parse_brownout brownout) with
  | None, _ ->
    `Error (false, Printf.sprintf "bad --mix %S (want READS:SCRIPTS:SUBMITS)" mix)
  | _, Some None ->
    `Error
      ( false,
        Printf.sprintf "bad --brownout %S (want ENTER:EXIT ms, EXIT < ENTER)"
          (Option.value brownout ~default:"") )
  | Some mix, brownout ->
    let brownout = Option.join brownout in
    let instr = Instr.create () in
    Instr.preregister instr;
    Instr.enable instr;
    let chaos =
      match chaos_seed with
      | None -> None
      | Some s ->
        Some (s, Option.value chaos_profile ~default:Resilience.Plan.Light)
    in
    let env = build_env ~customers ~instr ~chaos () in
    if cache then
      ignore
        (Aldsp.Dataspace.enable_result_cache env.Fixtures.Customer_profile.ds);
    let session = Aldsp.Dataspace.session env.Fixtures.Customer_profile.ds in
    let ctl = Aldsp.Dataspace.resilience env.Fixtures.Customer_profile.ds in
    (* brownout needs something to degrade; without a chaos policy set,
       mark the credit-rating service degradable (the PR 4 degraded
       getProfile shape) *)
    if brownout <> None && chaos = None then
      Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
    let capacity, rate =
      match overload_factor with
      | Some f when f > 0. ->
        let cap =
          measure_capacity ~mix ~io_ms ~submit_io_ms ~customers ~seed ~jobs
        in
        (Some cap, Some (f *. cap))
      | _ -> (None, rate)
    in
    (match (capacity, rate) with
    | Some cap, Some r ->
      Printf.printf "capacity %.0f qps measured (1 worker) -> offering %.0f\n"
        cap r
    | _ -> ());
    let overload_on =
      deadline_ms <> None || queue_bound <> None || shed <> None
      || brownout <> None
    in
    let overload =
      {
        Server.Pool.o_deadline_ms = deadline_ms;
        o_shed =
          (match (queue_bound, shed) with
          | None, None -> None
          | sp_queue_bound, sp_delay_target_ms ->
            Some { Server.Pool.sp_queue_bound; sp_delay_target_ms });
        o_brownout =
          Option.map
            (fun (b_enter_ms, b_exit_ms) ->
              {
                Server.Pool.b_enter_ms;
                b_exit_ms;
                b_apply = Resilience.Control.set_brownout ctl;
              })
            brownout;
        o_clock = Some (Resilience.Control.clock ctl);
      }
    in
    let baseline = source_pair env in
    let work =
      Server.Workload.jobs ~mix ?rate ?io_ms ?submit_io_ms ~customers ~seed
        ~count:jobs env
    in
    let rp = Server.Pool.run ~workers ~overload ~session work in
    let open Server.Pool in
    let c name =
      Option.value ~default:0
        (List.assoc_opt name (Instr.stats instr).Instr.counters)
    in
    Printf.printf "workers  %d\n" rp.r_workers;
    Printf.printf "jobs     %d (%s)\n" rp.r_jobs
      (String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) rp.r_by_kind));
    Printf.printf "ok       %d\n" rp.r_ok;
    Printf.printf "errors   %d\n" (rp.r_jobs - rp.r_ok);
    Printf.printf "wall     %.1f ms\n" rp.r_wall_ms;
    Printf.printf "qps      %.0f\n" rp.r_qps;
    Printf.printf "latency  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms\n"
      rp.r_latency.l_p50 rp.r_latency.l_p95 rp.r_latency.l_p99
      rp.r_latency.l_max;
    (* per-kind breakdown — the MVCC headline is read p99 staying flat
       while a submit stream runs; one kind alone would just repeat the
       aggregate line *)
    if List.length rp.r_kind_latency > 1 then
      List.iter
        (fun (k, l) ->
          Printf.printf
            "%-8s p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms\n" k
            l.l_p50 l.l_p95 l.l_p99 l.l_max)
        rp.r_kind_latency;
    if overload_on then begin
      Printf.printf "overload accepted %d  shed %d  expired %d  goodput %.0f qps\n"
        rp.r_accepted rp.r_shed rp.r_expired rp.r_goodput;
      Printf.printf
        "accepted p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms\n"
        rp.r_accepted_latency.l_p50 rp.r_accepted_latency.l_p95
        rp.r_accepted_latency.l_p99 rp.r_accepted_latency.l_max;
      if brownout <> None then
        Printf.printf "brownout entered %d  exited %d  degraded reads %d\n"
          (c Instr.K.overload_brownout_entered)
          (c Instr.K.overload_brownout_exited)
          (c Instr.K.resil_degraded)
    end;
    if rp.r_error_kinds <> [] then
      Printf.printf "kinds    %s\n"
        (String.concat "  "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s %d" k n)
              rp.r_error_kinds));
    List.iter
      (fun w ->
        Printf.printf
          "window   +%-6.0fms jobs %-4d p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n"
          w.w_from_ms w.w_jobs w.w_latency.l_p50 w.w_latency.l_p95
          w.w_latency.l_p99)
      rp.r_trajectory;
    if cache then begin
      let hits = c Instr.K.cache_hit and misses = c Instr.K.cache_miss in
      let rate =
        if hits + misses = 0 then 0.
        else 100. *. float_of_int hits /. float_of_int (hits + misses)
      in
      Printf.printf "cache    hit %d  miss %d  evict %d  bypass %d  (%.0f%% hits)\n"
        hits misses (c Instr.K.cache_evict) (c Instr.K.cache_bypass) rate
    end;
    List.iter
      (fun (label, msg) -> Printf.printf "error    %s: %s\n" label msg)
      rp.r_errors;
    if stats then begin
      let st = Instr.stats instr in
      print_newline ();
      print_string (Instr.render st)
    end;
    if smoke then begin
      (* the smoke contract: always positive throughput and a matched
         cross-database pair (zero partial commits). Without overload
         features every job must succeed; with them, every *accepted*
         job must succeed (chaos runs excepted — faults legitimately
         fail accepted jobs) and the accepted p99 must stay within the
         configured deadline. *)
      let failures = ref [] in
      let expect what b = if not b then failures := what :: !failures in
      expect "zero throughput" (rp.r_qps > 0.);
      expect "partial commit: cross-database pair torn"
        (pair_consistent ~baseline (source_pair env));
      (match read_p99_bound with
      | Some bound ->
        (* the MVCC contract: a submit stream with heavy write-side I/O
           (--submit-io-ms) must not drag reader tail latency up to
           submit latency the way the retired pool-wide lock did *)
        let read_p99 =
          match List.assoc_opt "read" rp.r_kind_latency with
          | Some l -> l.l_p99
          | None -> 0.
        in
        expect
          (Printf.sprintf "read p99 %.1fms over the %.0fms bound" read_p99
             bound)
          (read_p99 <= bound)
      | None -> ());
      if overload_on then begin
        expect "goodput is zero" (rp.r_goodput > 0.);
        if chaos = None then
          expect "accepted jobs failed" (rp.r_ok = rp.r_accepted);
        match deadline_ms with
        | Some d ->
          expect
            (Printf.sprintf "accepted p99 %.1fms over the %.0fms deadline"
               rp.r_accepted_latency.l_p99 d)
            (rp.r_accepted_latency.l_p99 <= d)
        | None -> ()
      end
      else if chaos = None then expect "errors present" (rp.r_ok = rp.r_jobs);
      match !failures with
      | [] ->
        print_endline "smoke: OK";
        `Ok ()
      | fs -> `Error (false, "smoke failed: " ^ String.concat "; " fs)
    end
    else `Ok ()

open Cmdliner

let workers =
  let doc = "Worker domains in the pool ($(docv) = 1 runs sequentially)." in
  Arg.(value & opt int 2 & info [ "w"; "workers" ] ~docv:"N" ~doc)

let jobs =
  let doc = "Total jobs to run." in
  Arg.(value & opt int 100 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let rate =
  let doc =
    "Open-loop arrival rate in jobs per second (Poisson arrivals); omitted, \
     workers pull jobs back-to-back (closed loop)."
  in
  Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"QPS" ~doc)

let io_ms =
  let doc =
    "Simulated source round-trip per job in milliseconds (a real sleep): the \
     wire latency remote sources would add, giving workers I/O to overlap."
  in
  Arg.(value & opt (some float) None & info [ "io-ms" ] ~docv:"MS" ~doc)

let submit_io_ms =
  let doc =
    "Simulated round-trip for submit jobs only, overriding --io-ms for them: \
     a writer stream with heavier wire time than reads — under the per-table \
     MVCC locks it slows only conflicting submits, never readers."
  in
  Arg.(value & opt (some float) None & info [ "submit-io-ms" ] ~docv:"MS" ~doc)

let seed =
  let doc = "Workload seed: the job mix, targets and arrivals replay from it." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let customers =
  let doc = "Customers in the synthetic dataspace." in
  Arg.(value & opt int 5 & info [ "customers" ] ~docv:"N" ~doc)

let mix =
  let doc = "Workload mix as READS:SCRIPTS:SUBMITS weights." in
  Arg.(value & opt string "6:3:1" & info [ "mix" ] ~docv:"R:S:U" ~doc)

let chaos_seed =
  let doc = "Run the sources under a deterministic fault plan seeded with $(docv)." in
  Arg.(value & opt (some int) None & info [ "chaos-seed" ] ~docv:"SEED" ~doc)

let chaos_profile =
  let profile_conv =
    let parse s =
      match Resilience.Plan.profile_of_string s with
      | Some p -> Ok p
      | None ->
        Error (`Msg (Printf.sprintf "unknown profile %S (calm|light|heavy)" s))
    in
    Arg.conv
      ( parse,
        fun fmt p ->
          Format.pp_print_string fmt (Resilience.Plan.profile_to_string p) )
  in
  let doc = "Fault-plan intensity: $(b,calm), $(b,light) or $(b,heavy)." in
  Arg.(
    value
    & opt (some profile_conv) None
    & info [ "chaos-profile" ] ~docv:"PROFILE" ~doc)

let cache =
  let doc =
    "Enable the lineage-invalidated result cache: pure reads are served from \
     materialized prior results and submits evict exactly the entries whose \
     lineage touches the written tables."
  in
  Arg.(value & flag & info [ "cache" ] ~doc)

let stats =
  let doc = "Print cumulative instrumentation counters after the run." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let smoke =
  let doc =
    "CI smoke contract: exit non-zero unless throughput is positive, the \
     cross-database pair is matched (zero partial commits), and — with \
     overload protection armed — every accepted job succeeded with accepted \
     p99 within the deadline."
  in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let deadline_ms =
  let doc =
    "End-to-end request deadline in milliseconds: a request whose budget dies \
     in the queue fails fast with err:RESX0005, and the remaining budget caps \
     every source call below (min with each policy timeout)."
  in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let queue_bound =
  let doc =
    "Bound the admission queue: when more than $(docv) arrived jobs are \
     waiting, requests are shed with err:RESX0006."
  in
  Arg.(value & opt (some int) None & info [ "queue-bound" ] ~docv:"N" ~doc)

let shed =
  let doc =
    "CoDel-style load shedding: drop requests with err:RESX0006 while the \
     queueing delay exceeds $(docv) ms (default 50 when the flag is given \
     bare)."
  in
  Arg.(
    value
    & opt ~vopt:(Some 50.) (some float) None
    & info [ "shed" ] ~docv:"MS" ~doc)

let brownout =
  let doc =
    "Brownout degradation: when the queueing-delay EWMA crosses ENTER ms, \
     degradable reads degrade proactively (served without the degradable \
     source, preferring warm cache hits) until the EWMA falls below EXIT ms. \
     Bare flag = 40:10."
  in
  Arg.(
    value
    & opt ~vopt:(Some "40:10") (some string) None
    & info [ "brownout" ] ~docv:"ENTER:EXIT" ~doc)

let overload_factor =
  let doc =
    "Offer $(docv) times the measured single-worker closed-loop capacity as \
     the open-loop arrival rate (overrides --rate): a calibrated overload for \
     smoke tests — 3.0 is a 3x storm."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "overload-factor" ] ~docv:"F" ~doc)

let read_p99_bound =
  let doc =
    "With --smoke: fail unless read-job p99 stays at or under $(docv) ms. \
     Paired with --submit-io-ms it pins the MVCC payoff — a background \
     writer stream must not inflate reader tail latency."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "read-p99-bound" ] ~docv:"MS" ~doc)

let cmd =
  let doc = "concurrent load against the demo ALDSP dataspace" in
  Cmd.v
    (Cmd.info "aldsp-server" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const main $ workers $ jobs $ rate $ io_ms $ submit_io_ms $ seed
       $ customers $ mix $ chaos_seed $ chaos_profile $ cache $ stats $ smoke
       $ deadline_ms $ queue_bound $ shed $ brownout $ overload_factor
       $ read_p99_bound))

let () = exit (Cmd.eval cmd)
