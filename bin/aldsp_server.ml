(* aldsp-server — drive the CustomerProfile dataspace with a pool of
   concurrent worker domains under a seeded open-loop workload.

     aldsp-server --workers 4 --jobs 200          # closed-loop burst
     aldsp-server --rate 500 --jobs 1000          # open loop, 500 jobs/s
     aldsp-server --chaos-seed 7 --stats          # under a fault plan
     aldsp-server --cache --stats                 # with the result cache
     aldsp-server --smoke                         # CI: qps > 0, 0 errors *)

open Core

let parse_mix s =
  match String.split_on_char ':' s with
  | [ r; w; u ] -> (
    match (int_of_string_opt r, int_of_string_opt w, int_of_string_opt u) with
    | Some m_reads, Some m_scripts, Some m_submits
      when m_reads >= 0 && m_scripts >= 0 && m_submits >= 0
           && m_reads + m_scripts + m_submits > 0 ->
      Some { Server.Workload.m_reads; m_scripts; m_submits }
    | _ -> None)
  | _ -> None

let build_env ~customers ~instr ~chaos () =
  let resilience =
    match chaos with
    | None -> None
    | Some (seed, profile) ->
      let ctl =
        Resilience.Control.create
          ~plan:(Resilience.Plan.make ~seed ~profile ())
          ~instr ()
      in
      List.iter
        (fun source ->
          Resilience.Control.set_policy ctl ~source
            (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
               ()))
        [ "db1"; "db2" ];
      Resilience.Control.set_policy ctl ~source:"CreditRatingService"
        (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
           ~breaker:Resilience.Breaker.default_config ());
      Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
      Some ctl
  in
  Fixtures.Customer_profile.make ~customers ~instr ?resilience ()

let main workers jobs rate io_ms seed customers mix chaos_seed chaos_profile
    cache stats smoke =
  match parse_mix mix with
  | None ->
    `Error (false, Printf.sprintf "bad --mix %S (want READS:SCRIPTS:SUBMITS)" mix)
  | Some mix ->
    let instr = Instr.create () in
    Instr.preregister instr;
    Instr.enable instr;
    let chaos =
      match chaos_seed with
      | None -> None
      | Some s ->
        Some (s, Option.value chaos_profile ~default:Resilience.Plan.Light)
    in
    let env = build_env ~customers ~instr ~chaos () in
    if cache then
      ignore
        (Aldsp.Dataspace.enable_result_cache env.Fixtures.Customer_profile.ds);
    let session = Aldsp.Dataspace.session env.Fixtures.Customer_profile.ds in
    let work =
      Server.Workload.jobs ~mix ?rate ?io_ms ~customers ~seed ~count:jobs env
    in
    let rp = Server.Pool.run ~workers ~session work in
    let open Server.Pool in
    Printf.printf "workers  %d\n" rp.r_workers;
    Printf.printf "jobs     %d (%s)\n" rp.r_jobs
      (String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) rp.r_by_kind));
    Printf.printf "ok       %d\n" rp.r_ok;
    Printf.printf "errors   %d\n" (rp.r_jobs - rp.r_ok);
    Printf.printf "wall     %.1f ms\n" rp.r_wall_ms;
    Printf.printf "qps      %.0f\n" rp.r_qps;
    Printf.printf "latency  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms\n"
      rp.r_latency.l_p50 rp.r_latency.l_p95 rp.r_latency.l_p99
      rp.r_latency.l_max;
    List.iter
      (fun w ->
        Printf.printf
          "window   +%-6.0fms jobs %-4d p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n"
          w.w_from_ms w.w_jobs w.w_latency.l_p50 w.w_latency.l_p95
          w.w_latency.l_p99)
      rp.r_trajectory;
    if cache then begin
      let c name =
        Option.value ~default:0
          (List.assoc_opt name (Instr.stats instr).Instr.counters)
      in
      let hits = c Instr.K.cache_hit and misses = c Instr.K.cache_miss in
      let rate =
        if hits + misses = 0 then 0.
        else 100. *. float_of_int hits /. float_of_int (hits + misses)
      in
      Printf.printf "cache    hit %d  miss %d  evict %d  bypass %d  (%.0f%% hits)\n"
        hits misses (c Instr.K.cache_evict) (c Instr.K.cache_bypass) rate
    end;
    List.iter
      (fun (label, msg) -> Printf.printf "error    %s: %s\n" label msg)
      rp.r_errors;
    if stats then begin
      let st = Instr.stats instr in
      print_newline ();
      print_string (Instr.render st)
    end;
    if smoke then
      if rp.r_qps > 0. && rp.r_ok = rp.r_jobs then begin
        print_endline "smoke: OK";
        `Ok ()
      end
      else `Error (false, "smoke failed: zero throughput or errors present")
    else `Ok ()

open Cmdliner

let workers =
  let doc = "Worker domains in the pool ($(docv) = 1 runs sequentially)." in
  Arg.(value & opt int 2 & info [ "w"; "workers" ] ~docv:"N" ~doc)

let jobs =
  let doc = "Total jobs to run." in
  Arg.(value & opt int 100 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let rate =
  let doc =
    "Open-loop arrival rate in jobs per second (Poisson arrivals); omitted, \
     workers pull jobs back-to-back (closed loop)."
  in
  Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"QPS" ~doc)

let io_ms =
  let doc =
    "Simulated source round-trip per job in milliseconds (a real sleep): the \
     wire latency remote sources would add, giving workers I/O to overlap."
  in
  Arg.(value & opt (some float) None & info [ "io-ms" ] ~docv:"MS" ~doc)

let seed =
  let doc = "Workload seed: the job mix, targets and arrivals replay from it." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let customers =
  let doc = "Customers in the synthetic dataspace." in
  Arg.(value & opt int 5 & info [ "customers" ] ~docv:"N" ~doc)

let mix =
  let doc = "Workload mix as READS:SCRIPTS:SUBMITS weights." in
  Arg.(value & opt string "6:3:1" & info [ "mix" ] ~docv:"R:S:U" ~doc)

let chaos_seed =
  let doc = "Run the sources under a deterministic fault plan seeded with $(docv)." in
  Arg.(value & opt (some int) None & info [ "chaos-seed" ] ~docv:"SEED" ~doc)

let chaos_profile =
  let profile_conv =
    let parse s =
      match Resilience.Plan.profile_of_string s with
      | Some p -> Ok p
      | None ->
        Error (`Msg (Printf.sprintf "unknown profile %S (calm|light|heavy)" s))
    in
    Arg.conv
      ( parse,
        fun fmt p ->
          Format.pp_print_string fmt (Resilience.Plan.profile_to_string p) )
  in
  let doc = "Fault-plan intensity: $(b,calm), $(b,light) or $(b,heavy)." in
  Arg.(
    value
    & opt (some profile_conv) None
    & info [ "chaos-profile" ] ~docv:"PROFILE" ~doc)

let cache =
  let doc =
    "Enable the lineage-invalidated result cache: pure reads are served from \
     materialized prior results and submits evict exactly the entries whose \
     lineage touches the written tables."
  in
  Arg.(value & flag & info [ "cache" ] ~doc)

let stats =
  let doc = "Print cumulative instrumentation counters after the run." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let smoke =
  let doc =
    "CI smoke contract: exit non-zero unless throughput is positive and every \
     job succeeded."
  in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let cmd =
  let doc = "concurrent load against the demo ALDSP dataspace" in
  Cmd.v
    (Cmd.info "aldsp-server" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const main $ workers $ jobs $ rate $ io_ms $ seed $ customers $ mix
       $ chaos_seed $ chaos_profile $ cache $ stats $ smoke))

let () = exit (Cmd.eval cmd)
