(* aldsp-console — explore the demo dataspace (the paper's customer-
   profile scenario plus the employees scenario) from a prompt.

     aldsp-console --catalog                 # the design view (Figure 1)
     aldsp-console -q 'profile:getProfile()' # one query
     aldsp-console --chaos-seed 7 -q '...'   # under a seeded fault plan
     aldsp-console                           # interactive (';;' submits) *)

open Core

let build_dataspace ?chaos () =
  (* one dataspace hosting both worked scenarios: the customer-profile
     sources live in their own env; employees are registered alongside.
     Instrumentation is always recording, so the `stats` command can show
     cumulative counters at any point. *)
  let instr = Instr.create () in
  Instr.preregister instr;
  Instr.enable instr;
  let resilience =
    match chaos with
    | None -> None
    | Some (seed, profile) ->
      (* seeded fault plan plus a demo policy set: bounded retries on
         every source, a breaker on the credit-rating service, which
         degrades (profile without rating) instead of failing reads *)
      let ctl =
        Resilience.Control.create
          ~plan:(Resilience.Plan.make ~seed ~profile ())
          ~instr ()
      in
      List.iter
        (fun source ->
          Resilience.Control.set_policy ctl ~source
            (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
               ()))
        [ "db1"; "db2" ];
      Resilience.Control.set_policy ctl ~source:"CreditRatingService"
        (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
           ~breaker:Resilience.Breaker.default_config ());
      Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
      Printf.printf "chaos: seed %d, profile %s\n" seed
        (Resilience.Plan.profile_to_string profile);
      Some ctl
  in
  let env = Fixtures.Customer_profile.make ~customers:5 ~instr ?resilience () in
  let ds = env.Fixtures.Customer_profile.ds in
  let hr = Relational.Database.create "hr" in
  ignore (Relational.Database.add_table hr Fixtures.Employees.employee_schema);
  let tbl = Relational.Database.table hr "EMPLOYEE" in
  List.iteri
    (fun i name ->
      Relational.Table.insert tbl
        [|
          Relational.Value.Int (i + 1);
          Text name;
          Int (10 * (1 + (i mod 3)));
          (if i = 0 then Relational.Value.Null else Relational.Value.Int ((i / 2) + 1));
          Float (50000. +. (1000. *. float_of_int i));
        |])
    [ "Dana Wilson"; "Mona Davis"; "Bob Lee"; "Carol Thomas"; "Nils Walker" ];
  ignore (Aldsp.Dataspace.register_database ds hr);
  let sess = Aldsp.Dataspace.session ds in
  Xqse.Session.declare_namespace sess "ens1" Fixtures.Employees.employees_ns;
  Xqse.Session.declare_namespace sess "uc" Fixtures.Employees.usecases_ns;
  Xqse.Session.load_library sess Fixtures.Employees.service_source;
  Xqse.Session.load_library sess Fixtures.Employees.uc2_chain_source;
  ds

let eval_and_print ds src =
  if String.trim src = "stats" then
    (* cumulative counters for the whole console session *)
    print_string
      (Instr.render ~times:false (Instr.stats (Aldsp.Dataspace.instr ds)))
  else if String.trim src = "breakers" then (
    let ctl = Aldsp.Dataspace.resilience ds in
    match List.sort compare (Resilience.Control.attached ctl) with
    | [] ->
      print_endline "breakers: no sources attached (start with --chaos-seed)"
    | sources ->
      List.iter
        (fun source ->
          match Resilience.Control.breaker_state ctl ~source with
          | Some st ->
            Printf.printf "%-20s %s\n" source
              (Resilience.Breaker.state_to_string st)
          | None -> Printf.printf "%-20s no breaker\n" source)
        sources)
  else if String.trim src = "tables" then
    (* per-table MVCC state: published version, live (pinned) version
       count, and the write lock's holder/waiters *)
    List.iter
      (fun db ->
        List.iter
          (fun tbl ->
            let holder, waiters = Relational.Table.lock_info tbl in
            Printf.printf "%-16s v%-3d live %d  lock %s waiters %d\n"
              (Relational.Database.name db ^ "." ^ Relational.Table.name tbl)
              (Relational.Table.current_version tbl)
              (Relational.Table.live_versions tbl)
              (match holder with
              | None -> "free"
              | Some id -> Printf.sprintf "held(domain %d)" id)
              waiters)
          (Relational.Database.tables db))
      (Aldsp.Dataspace.databases ds)
  else if String.trim src = "cache" then (
    match Aldsp.Dataspace.result_cache ds with
    | None -> print_endline "result cache: off (start with --cache)"
    | Some h ->
      let store = Cache.store h in
      Printf.printf "result cache: on — %d entries, generation %d\n"
        (Cache.Store.size store)
        (Cache.Store.generation store))
  else
    match Xqse.Session.eval (Aldsp.Dataspace.session ds) src with
    | result -> print_endline (Xdm.Xml_serialize.seq_to_string result)
    | exception Xdm.Item.Error { code; message; _ } ->
      Printf.printf "error %s: %s\n" (Xdm.Qname.to_string code) message
    | exception Xquery.Parser.Syntax_error { line; col; message } ->
      Printf.printf "syntax error at %d:%d: %s\n" line col message

let interactive ds =
  Printf.printf
    "ALDSP demo dataspace. End input with ';;'. Try: catalog:services()/@name\n";
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "aldsp> " else "    -> ");
    flush stdout;
    match In_channel.input_line In_channel.stdin with
    | None -> print_newline ()
    | Some line ->
      let trimmed = String.trim line in
      let done_ =
        String.length trimmed >= 2
        && String.sub trimmed (String.length trimmed - 2) 2 = ";;"
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      if done_ then begin
        let src = String.trim (Buffer.contents buf) in
        let src = String.sub src 0 (String.length src - 2) in
        Buffer.clear buf;
        if String.trim src <> "" then eval_and_print ds src;
        loop ()
      end
      else loop ()
  in
  loop ()

let main catalog queries lineage chaos_seed chaos_profile cache =
  let chaos =
    match (chaos_seed, chaos_profile) with
    | None, None -> None
    | seed, profile ->
      Some
        ( Option.value seed ~default:1,
          Option.value profile ~default:Resilience.Plan.Light )
  in
  let ds = build_dataspace ?chaos () in
  if cache then ignore (Aldsp.Dataspace.enable_result_cache ds);
  if catalog then print_string (Aldsp.Dataspace.describe ds);
  (match lineage with
  | Some name -> (
    match Aldsp.Dataspace.find_service ds name with
    | None -> Printf.printf "no such service: %s\n" name
    | Some svc -> (
      match Aldsp.Dataspace.lineage_of ds svc with
      | Ok blk -> print_string (Aldsp.Lineage.describe blk)
      | Error m -> Printf.printf "lineage error: %s\n" m))
  | None -> ());
  List.iter (eval_and_print ds) queries;
  if (not catalog) && queries = [] && lineage = None then interactive ds;
  `Ok ()

open Cmdliner

let catalog =
  let doc = "Print the design view of every data service." in
  Arg.(value & flag & info [ "catalog" ] ~doc)

let queries =
  let doc = "Evaluate $(docv) against the demo dataspace." in
  Arg.(value & opt_all string [] & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let lineage =
  let doc = "Print the update lineage of the named service." in
  Arg.(value & opt (some string) None & info [ "lineage" ] ~docv:"SERVICE" ~doc)

let chaos_seed =
  let doc =
    "Run the dataspace under a deterministic fault plan seeded with $(docv): \
     injected transients, latency spikes and down windows, with retry \
     policies and a circuit breaker on the credit-rating service. The same \
     seed replays the same faults."
  in
  Arg.(value & opt (some int) None & info [ "chaos-seed" ] ~docv:"SEED" ~doc)

let chaos_profile =
  let profile_conv =
    let parse s =
      match Resilience.Plan.profile_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "unknown profile %S (calm|light|heavy)" s))
    in
    Arg.conv (parse, fun fmt p ->
        Format.pp_print_string fmt (Resilience.Plan.profile_to_string p))
  in
  let doc = "Fault-plan intensity: $(b,calm), $(b,light) or $(b,heavy)." in
  Arg.(
    value
    & opt (some profile_conv) None
    & info [ "chaos-profile" ] ~docv:"PROFILE" ~doc)

let cache =
  let doc =
    "Enable the lineage-invalidated result cache for the session; the \
     $(b,cache) console command shows its state and $(b,stats) its counters."
  in
  Arg.(value & flag & info [ "cache" ] ~doc)

let cmd =
  let doc = "explore the demo ALDSP dataspace" in
  Cmd.v
    (Cmd.info "aldsp-console" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const main $ catalog $ queries $ lineage $ chaos_seed $ chaos_profile
       $ cache))

let () = exit (Cmd.eval cmd)
