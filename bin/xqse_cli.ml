(* xqse — run XQSE programs (and plain XQuery) from the command line.

     xqse -e '{ return value "Hello, World"; }'
     xqse program.xqse
     xqse --lib defs.xqse -e 'local:fact(6)'
     echo '1 + 2' | xqse -                                            *)

open Core

let read_file path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let run_program ~optimize ~trace ~ast ~explain ~libs source =
  if ast then
    (* parse (no execution) and dump the program back as surface syntax *)
    print_string
      (Xqse.Pretty.program
         (Xqse.Parse.parse_program (Xquery.Context.default_static ()) source))
  else if explain then begin
    (* optimize (no execution) and report the rewritten program plus what
       the optimizer did to it *)
    let session = Xqse.Session.create ~optimize () in
    List.iter (fun lib -> Xqse.Session.load_library session (read_file lib)) libs;
    let ex = Xqse.Session.explain session source in
    print_string ex.Xqse.Session.ex_program;
    List.iter (fun l -> Printf.printf "rewrite: %s\n" l) ex.Xqse.Session.ex_log;
    Printf.printf "stats: %s\n"
      (Xquery.Optimizer.stats_to_string ex.Xqse.Session.ex_stats)
  end
  else begin
    let session = Xqse.Session.create ~optimize () in
    if trace then
      Xqse.Session.set_trace session (fun m -> Printf.eprintf "trace: %s\n%!" m);
    List.iter (fun lib -> Xqse.Session.load_library session (read_file lib)) libs;
    let result = Xqse.Session.eval session source in
    print_endline (Xdm.Xml_serialize.seq_to_string result)
  end

(* A line-oriented REPL: input accumulates until a line ends with ';;'.
   Declaration-only programs install into the session and persist;
   programs with a body evaluate against everything loaded so far. *)
let repl ~optimize ~trace () =
  let session = Xqse.Session.create ~optimize () in
  if trace then
    Xqse.Session.set_trace session (fun m -> Printf.eprintf "trace: %s\n%!" m);
  Printf.printf
    "XQSE interactive session. End input with ';;'. Declarations persist.\n";
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "xqse> " else "   -> ");
    flush stdout;
    match In_channel.input_line In_channel.stdin with
    | None -> print_newline ()
    | Some line ->
      let trimmed = String.trim line in
      let done_ =
        String.length trimmed >= 2
        && String.sub trimmed (String.length trimmed - 2) 2 = ";;"
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      if done_ then begin
        let src =
          let s = Buffer.contents buf in
          let s = String.trim s in
          String.sub s 0 (String.length s - 2)
        in
        Buffer.clear buf;
        if String.trim src <> "" then begin
          (try
             let prog =
               Xqse.Parse.parse_program (Xquery.Context.default_static ()) src
             in
             if prog.Xqse.Stmt.prog_body = None then begin
               Xqse.Session.load_library session src;
               Printf.printf "declared.\n"
             end
             else
               print_endline
                 (Xdm.Xml_serialize.seq_to_string (Xqse.Session.eval session src))
           with
          | Xdm.Item.Error { code; message; _ } ->
            Printf.printf "error %s: %s\n" (Xdm.Qname.to_string code) message
          | Xquery.Parser.Syntax_error { line; col; message } ->
            Printf.printf "syntax error at %d:%d: %s\n" line col message
          | Xquery.Lexer.Lex_error { pos; message } ->
            Printf.printf "lexical error at offset %d: %s\n" pos message)
        end;
        loop ()
      end
      else loop ()
  in
  loop ()

let main expr files libs optimize trace ast explain interactive =
  if interactive then begin
    repl ~optimize ~trace ();
    `Ok ()
  end
  else
  let sources =
    (match expr with Some e -> [ e ] | None -> [])
    @ List.map read_file files
  in
  if sources = [] then `Error (true, "nothing to run: pass a file or -e EXPR")
  else
    try
      List.iter (run_program ~optimize ~trace ~ast ~explain ~libs) sources;
      `Ok ()
    with
    | Xdm.Item.Error { code; message; _ } ->
      `Error
        (false, Printf.sprintf "dynamic error %s: %s" (Xdm.Qname.to_string code) message)
    | Xquery.Parser.Syntax_error { line; col; message } ->
      `Error (false, Printf.sprintf "syntax error at %d:%d: %s" line col message)
    | Xquery.Lexer.Lex_error { pos; message } ->
      `Error (false, Printf.sprintf "lexical error at offset %d: %s" pos message)
    | Sys_error msg -> `Error (false, msg)

open Cmdliner

let expr =
  let doc = "Evaluate $(docv) instead of reading a file." in
  Arg.(value & opt (some string) None & info [ "e"; "eval" ] ~docv:"EXPR" ~doc)

let files =
  let doc = "XQSE program files to run ($(b,-) for stdin)." in
  Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc)

let libs =
  let doc =
    "Load $(docv) as a library program (declarations only) before running."
  in
  Arg.(value & opt_all string [] & info [ "lib" ] ~docv:"LIB" ~doc)

let optimize =
  let doc =
    "Disable the rewrite optimizer: programs run exactly as written, with \
     no constant folding, let inlining, join detection or predicate \
     pushdown. Useful to isolate optimizer bugs — an optimized and an \
     unoptimized run of the same program must produce the same result."
  in
  Arg.(value & flag & info [ "no-optimize" ] ~doc)
  |> Term.app (Term.const not)

let trace =
  let doc = "Print fn:trace output to stderr." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let ast =
  let doc = "Parse only; print the program back as surface syntax." in
  Arg.(value & flag & info [ "ast" ] ~doc)

let explain =
  let doc =
    "Optimize only (no execution); print the rewritten program, one \
     $(b,rewrite:) line per optimizer rewrite, and a $(b,stats:) summary."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let interactive =
  let doc = "Start an interactive session (end each input with ';;')." in
  Arg.(value & flag & info [ "i"; "interactive" ] ~doc)

let cmd =
  let doc = "run XQSE (XQuery Scripting Extension) programs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "XQSE extends XQuery 1.0 with statements: blocks, assignable \
         variables, while and iterate loops, if/then/else, try/catch, \
         procedures and update statements. This interpreter reproduces the \
         language described in the ICDE 2008 paper \"XQSE: An XQuery \
         Scripting Extension for the AquaLogic Data Services Platform\".";
    ]
  in
  Cmd.v
    (Cmd.info "xqse" ~version:"1.0.0" ~doc ~man)
    Term.(
      ret (
        const main $ expr $ files $ libs $ optimize $ trace $ ast $ explain
        $ interactive))

let () = exit (Cmd.eval cmd)
