(* xqse — run XQSE programs (and plain XQuery) from the command line.

     xqse -e '{ return value "Hello, World"; }'
     xqse program.xqse
     xqse --lib defs.xqse -e 'local:fact(6)'
     echo '1 + 2' | xqse -                                            *)

open Core

let read_file path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

(* One instrumentation handle per invocation: --trace attaches a stderr
   sink (text or JSON lines), --stats just records counters. Without
   either flag the shared disabled handle keeps the hot paths free. *)
let make_instr ~stats ~trace =
  if not stats && trace = None then Instr.disabled
  else begin
    let sink =
      match trace with
      | Some `Text -> Instr.Text (fun l -> Printf.eprintf "%s\n%!" l)
      | Some `Json -> Instr.Json (fun l -> Printf.eprintf "%s\n%!" l)
      | None -> Instr.Null
    in
    let i = Instr.create ~sink () in
    Instr.preregister i;
    Instr.enable i;
    i
  end

let run_program ~optimize ~stats ~trace ~ast ~explain ~libs source =
  if ast then
    (* parse (no execution) and dump the program back as surface syntax *)
    print_string
      (Xqse.Pretty.program
         (Xqse.Parse.parse_program (Xquery.Context.default_static ()) source))
  else if explain then begin
    (* optimize (no execution) and report the rewritten program plus what
       the optimizer did to it *)
    let session =
      Xqse.Session.create
        ~config:{ Xqse.Session.default_config with optimize }
        ()
    in
    List.iter (fun lib -> Xqse.Session.load_library session (read_file lib)) libs;
    let ex = Xqse.Session.explain session source in
    print_string ex.Xqse.Session.ex_program;
    List.iter (fun l -> Printf.printf "rewrite: %s\n" l) ex.Xqse.Session.ex_log;
    Printf.printf "stats: %s\n"
      (Xquery.Optimizer.stats_to_string ex.Xqse.Session.ex_stats)
  end
  else begin
    let instr = make_instr ~stats ~trace in
    let session =
      Xqse.Session.create
        ~config:{ Xqse.Session.default_config with optimize; instr }
        ()
    in
    List.iter (fun lib -> Xqse.Session.load_library session (read_file lib)) libs;
    let result = Xqse.Session.exec session source in
    print_endline (Xdm.Xml_serialize.seq_to_string result.Xqse.Session.r_value);
    if stats then print_string (Instr.render result.Xqse.Session.r_stats)
  end

(* A line-oriented REPL: input accumulates until a line ends with ';;'.
   Declaration-only programs install into the session and persist;
   programs with a body evaluate against everything loaded so far. *)
let repl ~optimize ~stats ~trace () =
  (* always record counters in a REPL so the [stats] command has data
     even without --stats; --stats additionally prints per-query deltas *)
  let instr = make_instr ~stats:true ~trace in
  let session =
      Xqse.Session.create
        ~config:{ Xqse.Session.default_config with optimize; instr }
        ()
    in
  Printf.printf
    "XQSE interactive session. End input with ';;'. Declarations persist.\n";
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "xqse> " else "   -> ");
    flush stdout;
    match In_channel.input_line In_channel.stdin with
    | None -> print_newline ()
    | Some line ->
      let trimmed = String.trim line in
      let done_ =
        String.length trimmed >= 2
        && String.sub trimmed (String.length trimmed - 2) 2 = ";;"
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      if done_ then begin
        let src =
          let s = Buffer.contents buf in
          let s = String.trim s in
          String.sub s 0 (String.length s - 2)
        in
        Buffer.clear buf;
        if String.trim src <> "" then begin
          if String.trim src = "stats" then
            (* cumulative session counters, not one query's delta *)
            print_string (Instr.render (Instr.stats instr))
          else
            (try
               let prog =
                 Xqse.Parse.parse_program (Xquery.Context.default_static ()) src
               in
               if prog.Xqse.Stmt.prog_body = None then begin
                 Xqse.Session.load_library session src;
                 Printf.printf "declared.\n"
               end
               else begin
                 let r = Xqse.Session.exec session src in
                 print_endline
                   (Xdm.Xml_serialize.seq_to_string r.Xqse.Session.r_value);
                 if stats then print_string (Instr.render r.Xqse.Session.r_stats)
               end
             with
            | Xdm.Item.Error { code; message; _ } ->
              Printf.printf "error %s: %s\n" (Xdm.Qname.to_string code) message
            | Xquery.Parser.Syntax_error { line; col; message } ->
              Printf.printf "syntax error at %d:%d: %s\n" line col message
            | Xquery.Lexer.Lex_error { pos; message } ->
              Printf.printf "lexical error at offset %d: %s\n" pos message)
        end;
        loop ()
      end
      else loop ()
  in
  loop ()

let main expr files libs optimize stats trace ast explain interactive =
  if interactive then begin
    repl ~optimize ~stats ~trace ();
    `Ok ()
  end
  else
  let sources =
    (match expr with Some e -> [ e ] | None -> [])
    @ List.map read_file files
  in
  if sources = [] then `Error (true, "nothing to run: pass a file or -e EXPR")
  else
    try
      List.iter (run_program ~optimize ~stats ~trace ~ast ~explain ~libs) sources;
      `Ok ()
    with
    | Xdm.Item.Error { code; message; _ } ->
      `Error
        (false, Printf.sprintf "dynamic error %s: %s" (Xdm.Qname.to_string code) message)
    | Xquery.Parser.Syntax_error { line; col; message } ->
      `Error (false, Printf.sprintf "syntax error at %d:%d: %s" line col message)
    | Xquery.Lexer.Lex_error { pos; message } ->
      `Error (false, Printf.sprintf "lexical error at offset %d: %s" pos message)
    | Sys_error msg -> `Error (false, msg)

open Cmdliner

let expr =
  let doc = "Evaluate $(docv) instead of reading a file." in
  Arg.(value & opt (some string) None & info [ "e"; "eval" ] ~docv:"EXPR" ~doc)

let files =
  let doc = "XQSE program files to run ($(b,-) for stdin)." in
  Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc)

let libs =
  let doc =
    "Load $(docv) as a library program (declarations only) before running."
  in
  Arg.(value & opt_all string [] & info [ "lib" ] ~docv:"LIB" ~doc)

let optimize =
  let doc =
    "Disable the rewrite optimizer: programs run exactly as written, with \
     no constant folding, let inlining, join detection or predicate \
     pushdown. Useful to isolate optimizer bugs — an optimized and an \
     unoptimized run of the same program must produce the same result."
  in
  Arg.(value & flag & info [ "no-optimize" ] ~doc)
  |> Term.app (Term.const not)

let stats =
  let doc =
    "Record execution counters (queries compiled, optimizer rewrites per \
     pass, SQL statements, rows scanned/fetched, web-service calls, XQSE \
     statements) and print the counter table after the result."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let trace =
  let doc =
    "Stream the execution trace to stderr: hierarchical spans (compile, \
     run, per-query) plus fn:trace output and, together with the \
     optimizer, one note per rewrite. $(docv) is $(b,text) (indented \
     lines, the default) or $(b,json) (one JSON object per line)."
  in
  Arg.(
    value
    & opt ~vopt:(Some `Text)
        (some (enum [ ("text", `Text); ("json", `Json) ]))
        None
    & info [ "trace" ] ~docv:"FMT" ~doc)

let ast =
  let doc = "Parse only; print the program back as surface syntax." in
  Arg.(value & flag & info [ "ast" ] ~doc)

let explain =
  let doc =
    "Optimize only (no execution); print the rewritten program, one \
     $(b,rewrite:) line per optimizer rewrite ([name]-prefixed with the \
     enclosing declaration), and a $(b,stats:) summary."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let interactive =
  let doc = "Start an interactive session (end each input with ';;')." in
  Arg.(value & flag & info [ "i"; "interactive" ] ~doc)

let cmd =
  let doc = "run XQSE (XQuery Scripting Extension) programs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "XQSE extends XQuery 1.0 with statements: blocks, assignable \
         variables, while and iterate loops, if/then/else, try/catch, \
         procedures and update statements. This interpreter reproduces the \
         language described in the ICDE 2008 paper \"XQSE: An XQuery \
         Scripting Extension for the AquaLogic Data Services Platform\".";
    ]
  in
  Cmd.v
    (Cmd.info "xqse" ~version:"1.0.0" ~doc ~man)
    Term.(
      ret (
        const main $ expr $ files $ libs $ optimize $ stats $ trace $ ast
        $ explain $ interactive))

let () = exit (Cmd.eval cmd)
