(* The benchmark harness: one Bechamel test per experiment in DESIGN.md
   section 4, preceded by the experiment report that regenerates the
   paper's reproducible artifacts (Figures 3-4 and use cases 1-4 carry no
   measured numbers in the paper, so the report prints the qualitative
   rows - who wins, what SQL is generated, where behavior crosses over -
   and the micro-benchmarks quantify them).

   Run with:  dune exec bench/main.exe            (report + benchmarks)
              dune exec bench/main.exe -- report  (report only)
              dune exec bench/main.exe -- bench   (benchmarks only)      *)

open Core
open Core.Xdm
module R = Relational
module FC = Fixtures.Customer_profile
module FE = Fixtures.Employees

let uc local = Qname.make ~uri:FE.usecases_ns local

(* ------------------------------------------------------------------ *)
(* Shared workload setups (built once, reused by report and benches)    *)
(* ------------------------------------------------------------------ *)

let profile_env_small = lazy (FC.make ~customers:10 ())
let profile_env_mid = lazy (FC.make ~customers:50 ())

let employees_chain =
  lazy
    (let env = FE.make ~employees:32 ~fanout:1 () in
     let sess = Aldsp.Dataspace.session env.FE.ds in
     Xqse.Session.load_library sess FE.uc2_chain_source;
     (* the expression-oriented (recursive XQuery) baseline of DESIGN.md
        ablation 2 *)
     Xqse.Session.load_library sess
       {|
declare namespace ens1 = "urn:employees";
declare namespace uc = "urn:usecases";
declare function uc:chainRec($id as xs:integer?) as element(ens1:Employee)* {
  for $e in ens1:getByEmployeeID($id)
  return ($e,
    if (fn:string($e/ManagerID) eq '') then ()
    else uc:chainRec(xs:integer($e/ManagerID)))
};
|};
     env)

let employees_etl = lazy (
  let env = FE.make ~employees:50 () in
  Xqse.Session.load_library (Aldsp.Dataspace.session env.FE.ds) FE.uc3_etl_source;
  env)

let employees_repl = lazy (
  let env = FE.make ~employees:5 () in
  FE.load_all_use_cases env;
  env)

let getprofile env =
  Aldsp.Dataspace.call env.FC.ds
    (Qname.make ~uri:FC.profile_ns "getProfile")
    []

let submit_rename ?(policy = Aldsp.Occ.Updated_values) env cid name =
  let dg = FC.get_profile_by_id env cid in
  Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] name;
  Aldsp.Dataspace.submit env.FC.ds env.FC.svc ~policy dg

(* a join workload for the optimizer ablation (Figure-3-shaped
   cross-database equi-join), compiled once with and once without the
   optimizer over the same dataspace *)
let join_query =
  "for $c in customer:CUSTOMER() for $cc in credit_card:CREDIT_CARD() \
   where $c/CID eq $cc/CID return <hit>{fn:data($cc/CCID)}</hit>"

let join_sessions n =
  let env = FC.make ~customers:n ~max_cards:2 () in
  let sess = Aldsp.Dataspace.session env.FC.ds in
  let engine = Xqse.Session.engine sess in
  Xquery.Engine.set_optimizing engine true;
  let compiled_on = Xqse.Session.compile sess join_query in
  Xquery.Engine.set_optimizing engine false;
  let compiled_off = Xqse.Session.compile sess join_query in
  Xquery.Engine.set_optimizing engine true;
  (compiled_on, compiled_off)

(* XQSE statement-dispatch overhead: a tight while loop vs the
   equivalent declarative expressions *)
let dispatch_session = lazy (
  let sess = Xqse.Session.create () in
  let xqse_loop =
    Xqse.Session.compile sess
      {| {
        declare $sum := 0, $i := 1;
        while ($i le 1000) {
          set $sum := $sum + $i;
          set $i := $i + 1;
        }
        return value $sum;
      } |}
  in
  let xquery_sum = Xqse.Session.compile sess "sum(1 to 1000)" in
  let xquery_flwor = Xqse.Session.compile sess
      "sum(for $i in 1 to 1000 return $i)" in
  (sess, xqse_loop, xquery_sum, xquery_flwor))

(* XUF snapshot sweep: one update statement replacing N values *)
let snapshot_program n =
  Printf.sprintf
    {|declare variable $doc := <doc>{for $i in 1 to %d return <v>0</v>}</doc>;
{
  for $v in $doc/v return replace value of node $v with 1;
  return value count($doc/v[. eq '1']);
}|}
    n

(* ------------------------------------------------------------------ *)
(* Timing helper for the report (median of repeated wall-clock runs)   *)
(* ------------------------------------------------------------------ *)

let time_ms ?(repeat = 5) f =
  let times =
    List.init repeat (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let sorted = List.sort compare times in
  List.nth sorted (repeat / 2)

(* ------------------------------------------------------------------ *)
(* The experiment report                                                *)
(* ------------------------------------------------------------------ *)

let section title =
  Printf.printf "\n================ %s ================\n" title

(* machine-readable companion to the printed report: named metrics
   recorded as the sections run, written as BENCH_report.json *)
let metrics : (string * float) list ref = ref []
let record name v = metrics := (name, v) :: !metrics

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write_json_report counters =
  let oc = open_out "BENCH_report.json" in
  let entry fmt (n, v) = Printf.sprintf ("    \"%s\": " ^^ fmt) (json_escape n) v in
  Printf.fprintf oc "{\n  \"schema\": \"xqse-bench-report/1\",\n";
  Printf.fprintf oc "  \"metrics\": {\n%s\n  },\n"
    (String.concat ",\n" (List.map (entry "%.3f") (List.rev !metrics)));
  Printf.fprintf oc "  \"counters\": {\n%s\n  }\n}\n"
    (String.concat ",\n" (List.map (entry "%d") counters));
  close_out oc;
  Printf.printf "\nwrote BENCH_report.json (%d metrics, %d counters)\n"
    (List.length !metrics) (List.length counters)

(* the instrumented Figure 3/4 workload whose counters go into the JSON
   report: one full read plus one submit, on a session-wide handle *)
let instrumented_counters () =
  let instr = Instr.create () in
  Instr.preregister instr;
  Instr.enable instr;
  let env = FC.make ~customers:10 ~instr () in
  ignore (getprofile env);
  ignore
    (Xqse.Session.eval
       (Aldsp.Dataspace.session env.FC.ds)
       "{ declare $n := count(profile:getProfile()); return value $n; }");
  ignore (submit_rename env "007" "Carey");
  (Instr.stats instr).Instr.counters

let report () =
  Printf.printf "XQSE/ALDSP reproduction - experiment report\n";
  Printf.printf "(paper: ICDE 2008, Borkar et al.; see EXPERIMENTS.md)\n";

  section "F3-read: Figure 3 getProfile() scaling";
  Printf.printf "%-12s %-10s %-14s %-12s\n" "customers" "profiles" "ws calls" "median ms";
  List.iter
    (fun n ->
      let env = FC.make ~customers:n () in
      Webservice.reset_call_count env.FC.ws;
      let ms = time_ms (fun () -> getprofile env) in
      record (Printf.sprintf "f3.getProfile.N=%d.ms" n) ms;
      Printf.printf "%-12d %-10d %-14d %-12.2f\n" n (n + 1)
        (Webservice.call_count env.FC.ws / 5)
        ms)
    [ 10; 50; 200 ];

  section "F3-byid: getProfileById - optimizer on vs off";
  List.iter
    (fun n ->
      let on = FC.make ~customers:n () in
      let off = FC.make ~customers:n ~optimize:false () in
      let t_on = time_ms (fun () -> FC.get_profile_by_id on "C1") in
      let t_off = time_ms (fun () -> FC.get_profile_by_id off "C1") in
      record (Printf.sprintf "f3.byid.N=%d.optimizer_ratio" n) (t_off /. t_on);
      Printf.printf "N=%-4d  optimized %.2f ms   unoptimized %.2f ms   ratio %.2fx\n"
        n t_on t_off (t_off /. t_on))
    [ 10; 50 ];

  section "F4-sdo: the Figure 4 disconnected update";
  let env = Lazy.force profile_env_small in
  let dg = FC.get_profile_by_id env "007" in
  Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
  Printf.printf "datagraph wire form (change summary):\n  %s\n"
    (Sdo.serialize dg);
  let r = Aldsp.Dataspace.submit env.FC.ds env.FC.svc ~policy:Aldsp.Occ.Read_values dg in
  Printf.printf "decomposed statements (%d, committed=%b):\n"
    r.Aldsp.Dataspace.sr_statements r.Aldsp.Dataspace.sr_committed;
  List.iter (fun s -> Printf.printf "  %s\n" s) r.Aldsp.Dataspace.sr_sql;
  ignore (submit_rename env "007" "Carrey");

  section "OCC: optimistic concurrency policies";
  Printf.printf "%-18s %-28s %-10s\n" "policy" "concurrent writer touched" "outcome";
  List.iter
    (fun (policy, touched_col) ->
      let env = FC.make ~customers:2 () in
      let dg = FC.get_profile_by_id env "007" in
      Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
      ignore
        (R.Database.exec env.FC.db1
           (R.Database.Update
              { table = "CUSTOMER";
                set = [ (touched_col, R.Value.Text "intruder") ];
                where = R.Pred.eq "CID" (R.Value.Text "007") }));
      let r = Aldsp.Dataspace.submit env.FC.ds env.FC.svc ~policy dg in
      Printf.printf "%-18s %-28s %-10s\n"
        (Aldsp.Occ.to_string policy)
        touched_col
        (if r.Aldsp.Dataspace.sr_committed then "committed" else "conflict"))
    [
      (Aldsp.Occ.Read_values, "FIRST_NAME");
      (Aldsp.Occ.Updated_values, "FIRST_NAME");
      (Aldsp.Occ.Updated_values, "LAST_NAME");
      (Aldsp.Occ.Chosen [ "CID" ], "FIRST_NAME");
    ];

  section "XA: two-phase commit across db1 and db2";
  let env = FC.make ~customers:2 () in
  let dg = FC.get_profile_by_id env "007" in
  Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
  Sdo.set_leaf dg 1 (Sdo.path_of_string "CreditCards/CREDIT_CARD[1]/BRAND") "AMEX";
  R.Database.set_fail_on_prepare env.FC.db2 true;
  let r = Aldsp.Dataspace.submit env.FC.ds env.FC.svc dg in
  Printf.printf "prepare failure in db2 -> committed=%b (%s)\n"
    r.Aldsp.Dataspace.sr_committed
    (Option.value ~default:"-" r.Aldsp.Dataspace.sr_reason);
  let row = Option.get (R.Table.find_pk env.FC.customer [ R.Value.Text "007" ]) in
  Printf.printf "db1 rolled back -> LAST_NAME still %s\n"
    (R.Value.to_string (R.Table.get row env.FC.customer "LAST_NAME"));

  section "UC1: user-defined delete (XQSE over generated methods)";
  let env1 = FE.make ~employees:8 () in
  Xqse.Session.load_library (Aldsp.Dataspace.session env1.FE.ds) FE.uc1_delete_source;
  ignore (Aldsp.Dataspace.call env1.FE.ds (uc "deleteByEmployeeID") [ Item.int 8 ]);
  Printf.printf "deleteByEmployeeID(8): EMPLOYEE rows 8 -> %d; last SQL: %s\n"
    (R.Table.row_count env1.FE.employee)
    (List.nth (R.Database.sql_log env1.FE.hr)
       (R.Database.log_size env1.FE.hr - 1));

  section "UC2: management chain - procedural vs recursive-declarative";
  let env2 = Lazy.force employees_chain in
  let chain_len =
    List.length
      (Aldsp.Dataspace.call env2.FE.ds (uc "getManagementChain") [ Item.int 32 ])
  in
  let t_xqse =
    time_ms (fun () ->
        Aldsp.Dataspace.call env2.FE.ds (uc "getManagementChain") [ Item.int 32 ])
  in
  let t_rec =
    time_ms (fun () ->
        Aldsp.Dataspace.call env2.FE.ds (uc "chainRec") [ Item.int 32 ])
  in
  record "uc2.chain.xqse_while.ms" t_xqse;
  record "uc2.chain.recursive.ms" t_rec;
  Printf.printf "chain depth %d: XQSE while-loop %.2f ms, recursive XQuery %.2f ms (ratio %.2f)\n"
    chain_len t_xqse t_rec (t_xqse /. t_rec);

  section "UC3: lightweight ETL (iterate + transform + insert)";
  let env3 = Lazy.force employees_etl in
  let t_etl =
    time_ms ~repeat:3 (fun () ->
        R.Table.clear env3.FE.emp2;
        Aldsp.Dataspace.call env3.FE.ds (uc "copyAllToEMP2") [])
  in
  Printf.printf "copied %d employees in %.2f ms (%d INSERTs logged in backup)\n"
    (R.Table.row_count env3.FE.emp2)
    t_etl
    (List.length
       (List.filter
          (fun s -> String.length s > 6 && String.sub s 0 6 = "INSERT")
          (R.Database.sql_log env3.FE.backup)));

  section "UC4: replicating create under injected faults";
  let env4 = Lazy.force employees_repl in
  let next_id = ref 1000 in
  let attempt () =
    incr next_id;
    let emp =
      List.hd
        (Xml_parse.parse_fragment
           (Printf.sprintf
              {|<e:Employee xmlns:e="urn:employees"><EmployeeID>%d</EmployeeID><Name>B M</Name><DeptNo>10</DeptNo><ManagerID>1</ManagerID><Salary>1</Salary></e:Employee>|}
              !next_id))
    in
    match Aldsp.Dataspace.call env4.FE.ds (uc "create") [ [ Item.Node emp ] ] with
    | _ -> `Ok
    | exception Item.Error { code; _ } -> `Failed code.Qname.local
  in
  List.iter
    (fun rate ->
      R.Database.set_fail_statements_after env4.FE.backup None;
      let failures = ref 0 and oks = ref 0 and secondary = ref 0 in
      for i = 1 to 20 do
        (if rate > 0 && i mod rate = 0 then
           R.Database.set_fail_statements_after env4.FE.backup (Some 0));
        (match attempt () with
        | `Ok -> incr oks
        | `Failed "SECONDARY_CREATE_FAILURE" -> incr failures; incr secondary
        | `Failed _ -> incr failures)
      done;
      Printf.printf
        "backup fault every %-2s: %2d ok, %2d failed (all wrapped as SECONDARY: %b)\n"
        (if rate = 0 then "-" else string_of_int rate)
        !oks !failures
        (!failures = !secondary))
    [ 0; 4 ];

  section "OPT: optimizer ablation on the Figure-3-shaped join";
  Printf.printf "%-8s %-16s %-18s %-10s\n" "rows" "hash join (ms)" "nested loop (ms)" "speedup";
  List.iter
    (fun n ->
      let compiled_on, compiled_off = join_sessions n in
      let t_on = time_ms ~repeat:3 (fun () -> Xqse.Session.run compiled_on) in
      let t_off = time_ms ~repeat:3 (fun () -> Xqse.Session.run compiled_off) in
      record (Printf.sprintf "opt.join.N=%d.speedup" n) (t_off /. t_on);
      Printf.printf "%-8d %-16.2f %-18.2f %-10.2f\n" n t_on t_off (t_off /. t_on))
    [ 25; 100; 200 ];

  (* per-pass optimizer cost, and the work the rewrites remove: the same
     join compiled and run on an instrumented session, optimizer on vs
     off — the hash join scans the inner table once instead of once per
     outer row, which the rows.* counters make visible *)
  let opt_join_stats optimize =
    let instr = Instr.create () in
    Instr.preregister instr;
    Instr.enable instr;
    let env = FC.make ~customers:100 ~max_cards:2 ~instr () in
    let sess = Aldsp.Dataspace.session env.FC.ds in
    Xquery.Engine.set_optimizing (Xqse.Session.engine sess) optimize;
    ignore (Xqse.Session.eval sess join_query);
    Instr.stats instr
  in
  let stats_on = opt_join_stats true and stats_off = opt_join_stats false in
  let counter st n = try List.assoc n st.Instr.counters with Not_found -> 0 in
  Printf.printf "\nper-pass optimizer time (N=100, optimizer on):\n";
  List.iter
    (fun name ->
      match List.assoc_opt name stats_on.Instr.timers with
      | Some ms ->
        record (Printf.sprintf "opt.join.pass.%s.ms" name) ms;
        Printf.printf "  %-24s %8.3f ms\n" name ms
      | None -> ())
    [
      "optimizer.fold"; "optimizer.normalize"; "optimizer.inline";
      "optimizer.join"; "optimizer.push";
    ];
  Printf.printf "rows scanned: %d optimized vs %d unoptimized\n"
    (counter stats_on "rows.scanned")
    (counter stats_off "rows.scanned");
  Printf.printf "rows fetched: %d optimized vs %d unoptimized\n"
    (counter stats_on "rows.fetched")
    (counter stats_off "rows.fetched");
  List.iter
    (fun (name, v) -> record name (float_of_int v))
    [
      ("opt.join.rows_scanned.on", counter stats_on "rows.scanned");
      ("opt.join.rows_scanned.off", counter stats_off "rows.scanned");
      ("opt.join.rows_fetched.on", counter stats_on "rows.fetched");
      ("opt.join.rows_fetched.off", counter stats_off "rows.fetched");
    ];

  section "IDX: foreign-key index ablation on navigation functions";
  Printf.printf "%-8s %-18s %-18s %-10s\n" "orders" "indexed (ms)" "unindexed (ms)" "speedup";
  List.iter
    (fun n ->
      let env = FC.make ~customers:n ~max_orders:4 () in
      let nav () =
        Xqse.Session.eval
          (Aldsp.Dataspace.session env.FC.ds)
          "count(for $c in customer:CUSTOMER() return customer:getORDERS($c))"
      in
      let t_indexed = time_ms ~repeat:3 nav in
      R.Table.drop_indexes env.FC.orders;
      let t_scan = time_ms ~repeat:3 nav in
      R.Table.create_index env.FC.orders [ "CID" ];
      Printf.printf "%-8d %-18.2f %-18.2f %-10.2f\n"
        (R.Table.row_count env.FC.orders)
        t_indexed t_scan (t_scan /. t_indexed))
    [ 50; 200 ];

  section "OVH: XQSE statement dispatch vs declarative evaluation";
  let sess_d, xqse_loop, xquery_sum, xquery_flwor =
    Lazy.force dispatch_session
  in
  let t_loop = time_ms (fun () -> Xqse.Session.run xqse_loop) in
  let t_sum = time_ms (fun () -> Xqse.Session.run xquery_sum) in
  let t_flwor = time_ms (fun () -> Xqse.Session.run xquery_flwor) in
  Printf.printf
    "sum of 1..1000: XQSE while %.3f ms, fn:sum %.3f ms, FLWOR sum %.3f ms\n"
    t_loop t_sum t_flwor;
  record "ovh.dispatch_vs_sum.ratio" (t_loop /. t_sum);
  record "ovh.dispatch_vs_flwor.ratio" (t_loop /. t_flwor);
  Printf.printf "statement overhead vs fn:sum: %.1fx; vs FLWOR: %.1fx\n"
    (t_loop /. t_sum) (t_loop /. t_flwor);

  section "PLAN: closure-compiled plans and the session plan cache";
  (* the same while-loop/fn:sum pair with compiled plans switched off:
     the gap between the two ratios is the interpreter tax the closure
     compiler removes *)
  let eng_d = Xqse.Session.engine sess_d in
  Xquery.Engine.set_plans eng_d false;
  let t_loop_off = time_ms (fun () -> Xqse.Session.run xqse_loop) in
  let t_sum_off = time_ms (fun () -> Xqse.Session.run xquery_sum) in
  Xquery.Engine.set_plans eng_d true;
  record "plan.dispatch_vs_sum.interpreted.ratio" (t_loop_off /. t_sum_off);
  Printf.printf
    "dispatch ratio (XQSE while / fn:sum): compiled %.1fx, interpreted %.1fx\n"
    (t_loop /. t_sum) (t_loop_off /. t_sum_off);
  (* cold = fresh session (parse + compile + run); warm = the same text
     served from the session plan cache, compile span skipped *)
  let plan_query = "sum(for $i in 1 to 500 return $i * 2)" in
  let t_cold =
    time_ms (fun () ->
        let sess = Xqse.Session.create () in
        Xqse.Session.eval sess plan_query)
  in
  let i = Instr.create () in
  Instr.enable i;
  let sess_w = Xqse.Session.create ~instr:i () in
  ignore (Xqse.Session.eval sess_w plan_query);
  let before = Instr.stats i in
  let t_warm = time_ms (fun () -> Xqse.Session.eval sess_w plan_query) in
  let delta = Instr.since i before in
  let counter name =
    match List.assoc_opt name delta.Instr.counters with
    | Some n -> n
    | None -> 0
  in
  let compile_span_ms =
    List.fold_left
      (fun acc (name, ms) -> if name = "compile" then acc +. ms else acc)
      0. delta.Instr.timers
  in
  Printf.printf
    "eval %s: cold %.3f ms, warm %.3f ms (%.1fx); warm runs: %d cache \
     hits, %d misses, %.3f ms in compile span\n"
    plan_query t_cold t_warm
    (t_cold /. t_warm)
    (counter "plan.cache.hit")
    (counter "plan.cache.miss")
    compile_span_ms;
  record "plan.cold_eval.ms" t_cold;
  record "plan.warm_eval.ms" t_warm;
  record "plan.warm_speedup" (t_cold /. t_warm);
  record "plan.warm.compile_span.ms" compile_span_ms;

  section "XUF: snapshot size sweep (one update statement, N replaces)";
  List.iter
    (fun n ->
      let sess = Xqse.Session.create () in
      let compiled = Xqse.Session.compile sess (snapshot_program n) in
      let t = time_ms ~repeat:3 (fun () -> Xqse.Session.run compiled) in
      record (Printf.sprintf "xuf.snapshot.N=%d.ms" n) t;
      Printf.printf "N=%-5d  %.2f ms per snapshot\n" n t)
    [ 1; 10; 100; 1000 ];

  section "RESIL: seeded chaos storms over read+submit (virtual clock)";
  (* 50 seeded 8-round storms per profile — all deterministic, so these
     rows are reproducible artifacts, not samples *)
  Printf.printf "%-8s %-10s %-7s %-7s %-8s %-6s %-9s %-9s\n" "profile"
    "committed" "failed" "reads!" "retries" "trips" "degraded" "injected";
  List.iter
    (fun profile ->
      let name = Resilience.Plan.profile_to_string profile in
      let committed = ref 0 and failed = ref 0 and reads = ref 0 in
      let retries = ref 0 and trips = ref 0 in
      let degraded = ref 0 and injected = ref 0 in
      for seed = 1 to 50 do
        let r = Fixtures.Chaos.run ~seed ~profile () in
        assert (r.Fixtures.Chaos.r_violations = []);
        committed := !committed + r.Fixtures.Chaos.r_committed;
        failed := !failed + r.r_failed;
        reads := !reads + r.r_read_failures;
        retries := !retries + r.r_retries;
        trips := !trips + r.r_trips;
        degraded := !degraded + r.r_degraded;
        injected := !injected + r.r_injected
      done;
      Printf.printf "%-8s %-10d %-7d %-7d %-8d %-6d %-9d %-9d\n" name
        !committed !failed !reads !retries !trips !degraded !injected;
      record (Printf.sprintf "resil.%s.committed" name) (float_of_int !committed);
      record (Printf.sprintf "resil.%s.retries" name) (float_of_int !retries);
      record (Printf.sprintf "resil.%s.degraded" name) (float_of_int !degraded);
      record
        (Printf.sprintf "resil.%s.degraded_read_rate" name)
        (float_of_int !degraded /. float_of_int (50 * 8)))
    [ Resilience.Plan.Calm; Resilience.Plan.Light; Resilience.Plan.Heavy ];
  let t_storm =
    time_ms ~repeat:3 (fun () ->
        ignore (Fixtures.Chaos.run ~seed:7 ~profile:Resilience.Plan.Heavy ()))
  in
  Printf.printf "one heavy 8-round storm: %.2f ms wall\n" t_storm;
  record "resil.storm.heavy.ms" t_storm;

  section "STREAM: cursor pipeline vs forced materialization";
  (* two headline shapes over a 5000-row scan, each run with the cursor
     pipeline on and off: an early-exiting declarative consumer
     (fn:head) and an XQSE iterate that breaks after its first binding.
     Streaming should hold materialized items near zero while the
     forced-materializing mode pays for the whole table *)
  let stream_rows = 5000 in
  Printf.printf "%-14s %-12s %9s %8s %13s %8s\n" "shape" "mode" "ms" "pulled"
    "materialized" "scanned";
  List.iter
    (fun (shape, src) ->
      List.iter
        (fun streaming ->
          let instr = Instr.create () in
          Instr.enable instr;
          let env = FE.make ~employees:stream_rows ~instr () in
          let ds_sess = Aldsp.Dataspace.session env.FE.ds in
          let sess =
            Xqse.Session.with_config ds_sess
              { (Xqse.Session.config ds_sess) with streaming }
          in
          let compiled = Xqse.Session.compile sess src in
          let t = time_ms (fun () -> Xqse.Session.run compiled) in
          let before = Instr.stats instr in
          ignore (Xqse.Session.run compiled);
          let d = Instr.since instr before in
          let c k =
            match List.assoc_opt k d.Instr.counters with
            | Some n -> n
            | None -> 0
          in
          let mode = if streaming then "streaming" else "materialize" in
          Printf.printf "%-14s %-12s %9.3f %8d %13d %8d\n" shape mode t
            (c Instr.K.stream_pulled)
            (c Instr.K.stream_materialized)
            (c Instr.K.rows_scanned);
          record (Printf.sprintf "stream.%s.%s.ms" shape mode) t;
          record
            (Printf.sprintf "stream.%s.%s.materialized" shape mode)
            (float_of_int (c Instr.K.stream_materialized)))
        [ true; false ])
    [
      ("head-of-scan", "fn:head(employee:EMPLOYEE())/EMP_ID/text()");
      ( "iterate-break",
        "{ declare $n := 0; iterate $e over employee:EMPLOYEE() { set $n := \
         $n + 1; break(); } return value $n; }" );
    ];

  section "SERVE: concurrent query server, 1 -> 4 worker domains";
  (* the same seeded 200-job mix (reads : scripts : submits = 6:3:1)
     drained by 1, 2 and 4 worker domains. Each job carries a 2 ms
     simulated source round-trip — the wire latency remote ALDSP
     sources would add — so the workload is latency-bound and extra
     workers genuinely overlap I/O even on a small machine *)
  Printf.printf "cores available: %d\n"
    (Domain.recommended_domain_count ());
  Printf.printf "%-8s %8s %9s %9s %9s %9s %6s\n" "workers" "qps" "p50ms"
    "p95ms" "p99ms" "wallms" "errors";
  List.iter
    (fun workers ->
      let env = FC.make ~customers:5 () in
      let session = Aldsp.Dataspace.session env.FC.ds in
      let jobs =
        Server.Workload.jobs ~io_ms:2. ~customers:5 ~seed:42 ~count:200 env
      in
      let rp = Server.Pool.run ~workers ~session jobs in
      let open Server.Pool in
      Printf.printf "%-8d %8.0f %9.2f %9.2f %9.2f %9.1f %6d\n" workers
        rp.r_qps rp.r_latency.l_p50 rp.r_latency.l_p95 rp.r_latency.l_p99
        rp.r_wall_ms
        (rp.r_jobs - rp.r_ok);
      assert (rp.r_ok = rp.r_jobs);
      let m name v = record (Printf.sprintf "serve.workers=%d.%s" workers name) v in
      m "qps" rp.r_qps;
      m "p50_ms" rp.r_latency.l_p50;
      m "p95_ms" rp.r_latency.l_p95;
      m "p99_ms" rp.r_latency.l_p99)
    [ 1; 2; 4 ];

  (* the closed-loop table above reports pure service time; a pool
     slowly falling behind a fixed arrival rate looks identical there.
     Sustain an open-loop rate and report the latency trajectory —
     queueing delay counts, window by window *)
  Printf.printf "\nopen loop: 300 jobs at 400/s, 4 workers, 2 ms source RTT\n";
  Printf.printf "%-10s %6s %9s %9s %9s\n" "window" "jobs" "p50ms" "p95ms"
    "p99ms";
  let env = FC.make ~customers:5 () in
  let session = Aldsp.Dataspace.session env.FC.ds in
  let jobs =
    Server.Workload.jobs ~io_ms:2. ~rate:400. ~customers:5 ~seed:43 ~count:300
      env
  in
  let rp = Server.Pool.run ~workers:4 ~window_ms:250. ~session jobs in
  let open Server.Pool in
  assert (rp.r_ok = rp.r_jobs);
  List.iter
    (fun w ->
      Printf.printf "+%-9.0f %6d %9.2f %9.2f %9.2f\n" w.w_from_ms w.w_jobs
        w.w_latency.l_p50 w.w_latency.l_p95 w.w_latency.l_p99;
      let m name v =
        record
          (Printf.sprintf "serve.openloop.t=%.0fms.%s" w.w_from_ms name)
          v
      in
      m "p50_ms" w.w_latency.l_p50;
      m "p95_ms" w.w_latency.l_p95;
      m "p99_ms" w.w_latency.l_p99)
    rp.r_trajectory;
  record "serve.openloop.qps" rp.r_qps;

  (* mixed read/write: the MVCC acceptance gate. A background writer
     stream with 40 ms of write-side wire time runs alongside cheap
     reads; under the retired pool-wide lock every reader queued behind
     the submit in flight, dragging read p99 up to submit latency.
     With versioned tables readers run against pinned snapshots and the
     submit's per-table locks never touch them: reader p99 with the
     writer streaming must stay within 2x of the read-only baseline. *)
  Printf.printf "\nmixed: 4 workers, reads at 1 ms RTT, submits at 40 ms RTT\n";
  let read_p99 rp =
    match List.assoc_opt "read" rp.r_kind_latency with
    | Some l -> l.l_p99
    | None -> rp.r_accepted_latency.l_p99
  in
  let baseline_p99 =
    let env = FC.make ~customers:5 () in
    let session = Aldsp.Dataspace.session env.FC.ds in
    let jobs =
      Server.Workload.jobs
        ~mix:{ Server.Workload.m_reads = 1; m_scripts = 0; m_submits = 0 }
        ~io_ms:1. ~customers:5 ~seed:45 ~count:160 env
    in
    let rp = Server.Pool.run ~workers:4 ~session jobs in
    assert (rp.r_ok = rp.r_jobs);
    rp.r_latency.l_p99
  in
  let mixed =
    let env = FC.make ~customers:5 () in
    let session = Aldsp.Dataspace.session env.FC.ds in
    let jobs =
      Server.Workload.jobs
        ~mix:{ Server.Workload.m_reads = 8; m_scripts = 0; m_submits = 2 }
        ~io_ms:1. ~submit_io_ms:40. ~customers:5 ~seed:45 ~count:160 env
    in
    let rp = Server.Pool.run ~workers:4 ~session jobs in
    assert (rp.r_ok = rp.r_jobs);
    rp
  in
  let mixed_read_p99 = read_p99 mixed in
  let mixed_submit_p99 =
    match List.assoc_opt "submit" mixed.r_kind_latency with
    | Some l -> l.l_p99
    | None -> 0.
  in
  Printf.printf "%-28s %9.2f ms\n" "read-only p99" baseline_p99;
  Printf.printf "%-28s %9.2f ms\n" "read p99 with writer" mixed_read_p99;
  Printf.printf "%-28s %9.2f ms\n" "submit p99" mixed_submit_p99;
  Printf.printf "%-28s %9.2fx (gate: <= 2x)\n" "reader inflation"
    (if baseline_p99 > 0. then mixed_read_p99 /. baseline_p99 else 0.);
  record "serve.mixed.readonly.read_p99_ms" baseline_p99;
  record "serve.mixed.withwriter.read_p99_ms" mixed_read_p99;
  record "serve.mixed.withwriter.submit_p99_ms" mixed_submit_p99;

  section "OVERLOAD: open-loop storm at 3x capacity, shedding off vs on";
  (* same latency-bound mix, offered at three times the measured
     single-worker closed-loop capacity, with a 250 ms end-to-end
     deadline. Without shedding every job is served late (deadlines
     expire in the queue, p99-of-accepted explodes); with the CoDel
     delay target on, excess load is rejected at admission for ~zero
     service cost and the accepted jobs keep their latency. The
     cross-database pair check after each run pins zero partial
     commits under overload. *)
  let overload_capacity =
    let env = FC.make ~customers:5 () in
    let session = Aldsp.Dataspace.session env.FC.ds in
    let jobs =
      Server.Workload.jobs ~io_ms:2. ~customers:5 ~seed:44 ~count:80 env
    in
    (Server.Pool.run ~workers:1 ~session jobs).r_qps
  in
  let overload_rate = 3. *. overload_capacity in
  Printf.printf "capacity %.0f qps (1 worker, closed loop) -> offering %.0f\n"
    overload_capacity overload_rate;
  record "overload.capacity.qps" overload_capacity;
  let pair env =
    let value tbl pk col =
      match Relational.Table.find_pk tbl pk with
      | Some row -> Relational.Value.to_string (Relational.Table.get row tbl col)
      | None -> "<missing>"
    in
    ( value env.FC.customer [ Relational.Value.Text "007" ] "LAST_NAME",
      value env.FC.credit_card [ Relational.Value.Int 900001 ] "CC_BRAND" )
  in
  let pair_consistent ~baseline (ln, br) =
    let suffix ~prefix s =
      let pl = String.length prefix in
      if String.length s > pl && String.sub s 0 pl = prefix then
        Some (String.sub s pl (String.length s - pl))
      else None
    in
    baseline = (ln, br)
    ||
    match (suffix ~prefix:"Name" ln, suffix ~prefix:"BRAND" br) with
    | Some k1, Some k2 -> k1 = k2
    | _ -> false
  in
  Printf.printf "%-8s %-5s %9s %9s %6s %8s %12s %6s\n" "workers" "shed"
    "goodput" "accepted" "shed" "expired" "acc-p99ms" "pair";
  List.iter
    (fun workers ->
      List.iter
        (fun shed_on ->
          let env = FC.make ~customers:5 () in
          let session = Aldsp.Dataspace.session env.FC.ds in
          let baseline = pair env in
          let jobs =
            Server.Workload.jobs ~io_ms:2. ~rate:overload_rate ~customers:5
              ~seed:45 ~count:240 env
          in
          let overload =
            {
              no_overload with
              o_deadline_ms = Some 250.;
              o_shed =
                (if shed_on then
                   Some { sp_queue_bound = None; sp_delay_target_ms = Some 50. }
                 else None);
            }
          in
          let rp = Server.Pool.run ~workers ~overload ~session jobs in
          let consistent = pair_consistent ~baseline (pair env) in
          assert consistent;
          Printf.printf "%-8d %-5s %9.0f %9d %6d %8d %12.2f %6s\n" workers
            (if shed_on then "on" else "off")
            rp.r_goodput rp.r_accepted rp.r_shed rp.r_expired
            rp.r_accepted_latency.l_p99
            (if consistent then "ok" else "TORN");
          let m name v =
            record
              (Printf.sprintf "overload.workers=%d.shed=%s.%s" workers
                 (if shed_on then "on" else "off")
                 name)
              v
          in
          m "goodput.qps" rp.r_goodput;
          m "accepted" (float_of_int rp.r_accepted);
          m "shed" (float_of_int rp.r_shed);
          m "expired" (float_of_int rp.r_expired);
          m "accepted_p99_ms" rp.r_accepted_latency.l_p99;
          m "pair_consistent" (if consistent then 1. else 0.))
        [ false; true ])
    [ 1; 4 ];

  section "CACHE: lineage-invalidated result cache";
  (* warm-hit speedup on the hot read: the same getProfileById call,
     recomputed every time vs served from the cache *)
  let hot = {|profile:getProfileById("007")|} in
  let env_cold = FC.make ~customers:50 () in
  let sess_cold = Aldsp.Dataspace.session env_cold.FC.ds in
  let env_warm = FC.make ~customers:50 () in
  ignore (Aldsp.Dataspace.enable_result_cache env_warm.FC.ds);
  let sess_warm = Aldsp.Dataspace.session env_warm.FC.ds in
  ignore (Xqse.Session.eval sess_warm hot);
  let t_cold = time_ms (fun () -> Xqse.Session.eval sess_cold hot) in
  let t_warm = time_ms (fun () -> Xqse.Session.eval sess_warm hot) in
  Printf.printf
    "hot read (N=50): uncached %.3f ms   warm hit %.3f ms   speedup %.0fx\n"
    t_cold t_warm (t_cold /. t_warm);
  record "cache.hot_read.cold_ms" t_cold;
  record "cache.hot_read.warm_ms" t_warm;
  record "cache.hot_read.speedup" (t_cold /. t_warm);
  (* the server mix, cache off vs on: submits keep evicting, so the
     hit rate is what the 6:3:1 read/write balance sustains *)
  Printf.printf "\n%-8s %10s %10s %9s %9s\n" "workers" "qps(off)" "qps(on)"
    "speedup" "hitrate";
  List.iter
    (fun workers ->
      let run_mix ~cache =
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let env = FC.make ~customers:5 ~instr () in
        if cache then ignore (Aldsp.Dataspace.enable_result_cache env.FC.ds);
        let session = Aldsp.Dataspace.session env.FC.ds in
        let jobs =
          Server.Workload.jobs ~customers:5 ~seed:42 ~count:200 env
        in
        let rp = Server.Pool.run ~workers ~session jobs in
        assert (rp.r_ok = rp.r_jobs);
        (rp.r_qps, instr)
      in
      let qps_off, _ = run_mix ~cache:false in
      let qps_on, instr = run_mix ~cache:true in
      let c name =
        Option.value ~default:0
          (List.assoc_opt name (Instr.stats instr).Instr.counters)
      in
      let hits = c Instr.K.cache_hit and misses = c Instr.K.cache_miss in
      let hit_rate =
        if hits + misses = 0 then 0.
        else float_of_int hits /. float_of_int (hits + misses)
      in
      Printf.printf "%-8d %10.0f %10.0f %8.2fx %8.0f%%\n" workers qps_off
        qps_on (qps_on /. qps_off) (100. *. hit_rate);
      let m name v = record (Printf.sprintf "cache.workers=%d.%s" workers name) v in
      m "qps_off" qps_off;
      m "qps_on" qps_on;
      m "speedup" (qps_on /. qps_off);
      m "hit_rate" hit_rate)
    [ 1; 2; 4 ];

  write_json_report (instrumented_counters ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment             *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let fig3_read =
    [
      Test.make ~name:"fig3/getProfile/N=10"
        (Staged.stage (fun () -> getprofile (Lazy.force profile_env_small)));
      Test.make ~name:"fig3/getProfile/N=50"
        (Staged.stage (fun () -> getprofile (Lazy.force profile_env_mid)));
      Test.make ~name:"fig3/getProfileById/N=50"
        (Staged.stage (fun () ->
             FC.get_profile_by_id (Lazy.force profile_env_mid) "C7"));
    ]
  in
  let fig4 =
    let flip = ref false in
    [
      Test.make ~name:"fig4/sdo_update_roundtrip"
        (Staged.stage (fun () ->
             let env = Lazy.force profile_env_small in
             flip := not !flip;
             submit_rename env "007" (if !flip then "Carey" else "Carrey")));
      Test.make ~name:"fig4/parse_figure3_source"
        (Staged.stage (fun () ->
             Xqse.Parse.parse_program
               (Xquery.Context.default_static ())
               FC.profile_source));
    ]
  in
  let uc2 =
    let env = Lazy.force employees_chain in
    [
      Test.make ~name:"uc2/mgmt_chain/xqse_while"
        (Staged.stage (fun () ->
             Aldsp.Dataspace.call env.FE.ds (uc "getManagementChain")
               [ Item.int 32 ]));
      Test.make ~name:"uc2/mgmt_chain/xquery_recursive"
        (Staged.stage (fun () ->
             Aldsp.Dataspace.call env.FE.ds (uc "chainRec") [ Item.int 32 ]));
    ]
  in
  let uc3 =
    let env = Lazy.force employees_etl in
    [
      Test.make ~name:"uc3/etl_copy/N=50"
        (Staged.stage (fun () ->
             R.Table.clear env.FE.emp2;
             Aldsp.Dataspace.call env.FE.ds (uc "copyAllToEMP2") []));
    ]
  in
  let uc4 =
    let env = Lazy.force employees_repl in
    let id = ref 100000 in
    [
      Test.make ~name:"uc4/replicated_create"
        (Staged.stage (fun () ->
             incr id;
             let emp =
               List.hd
                 (Xml_parse.parse_fragment
                    (Printf.sprintf
                       {|<e:Employee xmlns:e="urn:employees"><EmployeeID>%d</EmployeeID><Name>A B</Name><DeptNo>10</DeptNo><ManagerID>1</ManagerID><Salary>1</Salary></e:Employee>|}
                       !id))
             in
             Aldsp.Dataspace.call env.FE.ds (uc "create") [ [ Item.Node emp ] ]));
    ]
  in
  let occ =
    let flip = ref false in
    let mk_occ name policy =
      Test.make ~name
        (Staged.stage (fun () ->
             let env = Lazy.force profile_env_small in
             flip := not !flip;
             submit_rename ~policy env "C1" (if !flip then "A" else "B")))
    in
    [
      mk_occ "occ/read_values" Aldsp.Occ.Read_values;
      mk_occ "occ/updated_values" Aldsp.Occ.Updated_values;
      mk_occ "occ/chosen_subset" (Aldsp.Occ.Chosen [ "CID" ]);
    ]
  in
  let xa =
    let schema =
      {
        R.Table.tbl_name = "T";
        columns = [ { R.Table.col_name = "ID"; col_type = R.Value.T_int; nullable = false } ];
        primary_key = [ "ID" ];
        foreign_keys = [];
      }
    in
    let a = R.Database.create "xa_a" in
    ignore (R.Database.add_table a schema);
    let b = R.Database.create "xa_b" in
    ignore (R.Database.add_table b schema);
    let i = ref 0 in
    [
      Test.make ~name:"xa/two_phase_commit"
        (Staged.stage (fun () ->
             incr i;
             match
               R.Xa.run [ a; b ] (fun () ->
                   ignore (R.Database.exec a
                       (R.Database.Insert { table = "T"; columns = [ "ID" ]; values = [ R.Value.Int !i ] }));
                   ignore (R.Database.exec b
                       (R.Database.Insert { table = "T"; columns = [ "ID" ]; values = [ R.Value.Int !i ] }));
                   ignore (R.Database.exec a
                       (R.Database.Delete { table = "T"; where = R.Pred.eq "ID" (R.Value.Int !i) }));
                   ignore (R.Database.exec b
                       (R.Database.Delete { table = "T"; where = R.Pred.eq "ID" (R.Value.Int !i) })))
             with
             | Ok () -> ()
             | Error m -> failwith m));
    ]
  in
  let opt =
    let compiled_on_100, compiled_off_100 = join_sessions 100 in
    [
      Test.make ~name:"opt/join_optimized/N=100"
        (Staged.stage (fun () -> Xqse.Session.run compiled_on_100));
      Test.make ~name:"opt/join_nested_loop/N=100"
        (Staged.stage (fun () -> Xqse.Session.run compiled_off_100));
    ]
  in
  let idx =
    let env_i = FC.make ~customers:100 ~max_orders:4 () in
    let env_s = FC.make ~customers:100 ~max_orders:4 () in
    R.Table.drop_indexes env_s.FC.orders;
    let nav env () =
      Xqse.Session.eval
        (Aldsp.Dataspace.session env.FC.ds)
        "count(for $c in customer:CUSTOMER() return customer:getORDERS($c))"
    in
    [
      Test.make ~name:"idx/nav_indexed/N=100" (Staged.stage (nav env_i));
      Test.make ~name:"idx/nav_scan/N=100" (Staged.stage (nav env_s));
    ]
  in
  let ovh =
    let _sess, xqse_loop, xquery_sum, xquery_flwor =
      Lazy.force dispatch_session
    in
    [
      Test.make ~name:"ovh/xqse_while_1000"
        (Staged.stage (fun () -> Xqse.Session.run xqse_loop));
      Test.make ~name:"ovh/fn_sum_1000"
        (Staged.stage (fun () -> Xqse.Session.run xquery_sum));
      Test.make ~name:"ovh/flwor_sum_1000"
        (Staged.stage (fun () -> Xqse.Session.run xquery_flwor));
    ]
  in
  let xuf =
    List.map
      (fun n ->
        let sess = Xqse.Session.create () in
        let compiled = Xqse.Session.compile sess (snapshot_program n) in
        Test.make
          ~name:(Printf.sprintf "xuf/snapshot/N=%d" n)
          (Staged.stage (fun () -> Xqse.Session.run compiled)))
      [ 1; 100 ]
  in
  fig3_read @ fig4 @ uc2 @ uc3 @ uc4 @ occ @ xa @ opt @ idx @ ovh @ xuf

let run_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "\n================ Bechamel micro-benchmarks ================\n";
  Printf.printf "%-36s %16s\n%!" "benchmark" "time/run";
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
            let human =
              if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
              else Printf.sprintf "%8.0f ns" ns
            in
            Printf.printf "%-36s %16s\n%!" name human
          | _ -> Printf.printf "%-36s %16s\n%!" name "n/a")
        analyzed)
    (bechamel_tests ())

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match mode with
  | "report" -> report ()
  | "bench" -> run_benchmarks ()
  | _ ->
    report ();
    run_benchmarks ());
  Printf.printf "\ndone.\n"
