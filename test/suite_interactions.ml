(* Cross-component interactions: compiled-program reuse, update
   statements against live platform state, procedures calling through
   layers, and trace routing. *)

open Util
open Core
open Core.Xdm
module R = Relational
module FE = Fixtures.Employees

let compiled_reuse_tests =
  [
    case "compiled XQuery runs many times with different variables" (fun () ->
        let engine = Xquery.Engine.create () in
        let compiled =
          Xquery.Engine.compile engine
            "declare variable $n external; $n * $n"
        in
        List.iter
          (fun n ->
            check_string "square"
              (string_of_int (n * n))
              (Xml_serialize.seq_to_string
                 (Xquery.Engine.run
                    ~opts:
                      {
                        Xquery.Engine.default_run_opts with
                        vars = [ (Qname.local "n", Item.int n) ];
                      }
                    compiled)))
          [ 2; 5; 12 ]);
    case "compiled XQSE program re-runs deterministically" (fun () ->
        let s = Xqse.Session.create () in
        let compiled =
          Xqse.Session.compile s
            {| {
              declare $acc := 0;
              iterate $i over 1 to 5 { set $acc := $acc + $i; }
              return value $acc;
            } |}
        in
        check_string "first" "15"
          (Xml_serialize.seq_to_string (Xqse.Session.run compiled));
        check_string "second" "15"
          (Xml_serialize.seq_to_string (Xqse.Session.run compiled)));
    case "compiled XQSE program accepts external vars per run" (fun () ->
        let s = Xqse.Session.create () in
        let compiled =
          Xqse.Session.compile s
            {|declare variable $limit external;
              {
                declare $acc := 0, $i := 1;
                while ($i le $limit) { set $acc := $acc + $i; set $i := $i + 1; }
                return value $acc;
              }|}
        in
        let with_limit n =
          {
            Xqse.Session.default_exec_opts with
            vars = [ (Qname.local "limit", Item.int n) ];
          }
        in
        check_string "limit 3" "6"
          (Xml_serialize.seq_to_string
             (Xqse.Session.run ~opts:(with_limit 3) compiled));
        check_string "limit 10" "55"
          (Xml_serialize.seq_to_string
             (Xqse.Session.run ~opts:(with_limit 10) compiled)));
  ]

let platform_interaction_tests =
  [
    case "XQSE procedure mixes update statements and service calls" (fun () ->
        let env = FE.make ~employees:4 () in
        let sess = Aldsp.Dataspace.session env.FE.ds in
        (* build an XML report, enrich it with an update statement per
           employee read from the service *)
        Xqse.Session.load_library sess
          {|
declare namespace ens1 = "urn:employees";
declare namespace rep = "urn:report";
declare readonly procedure rep:headcount() as element(Report) {
  declare $report := <Report><Count>0</Count></Report>;
  declare $n := 0;
  iterate $e over ens1:getAll() {
    set $n := $n + 1;
    replace value of node $report/Count with $n;
  }
  return value $report;
};
|};
        check_string "report" "<Report><Count>4</Count></Report>"
          (Xqse.Session.eval_to_string sess
             "declare namespace rep = 'urn:report'; rep:headcount()"));
    case "procedure -> function -> readonly procedure chain" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.load_library s
          {|
declare readonly procedure local:base($x as xs:integer) as xs:integer {
  return value $x + 1;
};
declare function local:middle($x as xs:integer) as xs:integer {
  local:base($x) * 2
};
declare procedure local:top($x as xs:integer) as xs:integer {
  declare $v := local:middle($x);
  return value $v + 100;
};
|};
        check_string "chain" "108"
          (Xml_serialize.seq_to_string
             (Xqse.Session.call s (Qname.make ~uri:Qname.local_default_ns "top")
                [ Item.int 3 ])));
    case "writes through procedures are visible to later reads in one program"
      (fun () ->
        let env = FE.make ~employees:2 () in
        let sess = Aldsp.Dataspace.session env.FE.ds in
        check_string "count grows" "2 3"
          (Xqse.Session.eval_to_string sess
             {| {
               declare $before := count(employee:EMPLOYEE());
               declare $after := 0;
               employee:createEMPLOYEE(
                 <EMPLOYEE><EMP_ID>77</EMP_ID><NAME>New Hire</NAME></EMPLOYEE>);
               set $after := count(employee:EMPLOYEE());
               return value ($before, $after);
             } |}));
    case "trace output is routed through sessions into the platform" (fun () ->
        let env = FE.make ~employees:2 () in
        let sess = Aldsp.Dataspace.session env.FE.ds in
        let traces = ref [] in
        Xqse.Session.set_trace sess (fun m -> traces := m :: !traces);
        ignore
          (Xqse.Session.eval sess
             {| { iterate $e over ens1:getAll() { fn:trace($e/EmployeeID, "emp"); } } |});
        check_int "one trace per employee" 2 (List.length !traces));
    case "update statement cannot touch function results by accident" (fun () ->
        (* service reads return fresh copies; updating them changes the
           copy, not the source *)
        let env = FE.make ~employees:2 () in
        let sess = Aldsp.Dataspace.session env.FE.ds in
        ignore
          (Xqse.Session.eval sess
             {| {
               declare $row := (employee:EMPLOYEE())[1];
               replace value of node $row/NAME with "Hacked";
               return value string($row/NAME);
             } |});
        check_bool "source unchanged" true
          (not
             (List.exists
                (fun r -> R.Table.get r env.FE.employee "NAME" = R.Value.Text "Hacked")
                (R.Table.scan env.FE.employee))));
    case "catalog lists XQSE-declared methods after deployment" (fun () ->
        let env = FE.make ~employees:2 () in
        let sess = Aldsp.Dataspace.session env.FE.ds in
        Xqse.Session.load_library sess FE.uc2_chain_source;
        (* the procedure exists in the session even though the catalog
           only tracks declared service methods *)
        check_string "callable" "1"
          (Xqse.Session.eval_to_string sess
             "count(uc:getManagementChain(1))"));
  ]

let suites =
  [
    ("interactions.compiled-reuse", compiled_reuse_tests);
    ("interactions.platform", platform_interaction_tests);
  ]
