(* The streaming sequence core: pull-based cursors from relational scans
   through the evaluator to XQSE iterate.

   Two kinds of assertion:
   - equivalence: streaming and forced-materializing modes return the
     same serialized value (the differential corpus covers this broadly;
     these tests pin the headline shapes);
   - laziness: early-exiting consumers (fn:exists, fn:head, EBV,
     positional [1], iterate+break) pull O(1) items from a large scan,
     proven on the [stream.pulled] / [rows.scanned] counters — a
     regression that silently re-materializes fails here, not in a
     benchmark. *)

open Util
open Core
module FE = Fixtures.Employees

let counter stats name =
  match List.assoc_opt name stats.Instr.counters with Some n -> n | None -> 0

(* one large-scan environment per streaming mode; 10_000 rows makes an
   accidental full materialization unmistakable *)
let rows = 10_000

let make_env ~streaming =
  let instr = Instr.create () in
  Instr.enable instr;
  let env = FE.make ~employees:rows ~instr () in
  let ds_sess = Aldsp.Dataspace.session env.FE.ds in
  (* a config fork of the dataspace session: same sources and instr,
     streaming fixed immutably for this environment *)
  let sess =
    Xqse.Session.with_config ds_sess
      { (Xqse.Session.config ds_sess) with streaming }
  in
  (sess, instr)

let streaming_env = lazy (make_env ~streaming:true)
let materializing_env = lazy (make_env ~streaming:false)

(* run [src] in both modes: return the streaming result plus the
   streaming-mode counter delta, after checking the modes agree *)
let both src =
  let run env =
    let sess, instr = Lazy.force env in
    let before = Instr.stats instr in
    let v =
      match Xqse.Session.eval_to_string sess src with
      | s -> Ok s
      | exception Xdm.Item.Error { code; _ } ->
        Error (Xdm.Qname.to_string code)
    in
    (v, Instr.since instr before)
  in
  let sv, sd = run streaming_env in
  let mv, _ = run materializing_env in
  if sv <> mv then
    Alcotest.failf "modes disagree on %s:\n  streaming: %s\n  materializing: %s"
      src
      (match sv with Ok s -> s | Error c -> "error " ^ c)
      (match mv with Ok s -> s | Error c -> "error " ^ c);
  match sv with
  | Ok s -> (s, sd)
  | Error c -> Alcotest.failf "unexpected error %s on %s" c src

(* an early exit must pull a handful of items, not the table *)
let small = 8

let early_exit_tests =
  [
    case "fn:exists over a 10k-row scan pulls O(1)" (fun () ->
        let v, d = both "fn:exists(employee:EMPLOYEE())" in
        check_string "value" "true" v;
        check_bool
          (Printf.sprintf "stream.pulled %d <= %d"
             (counter d Instr.K.stream_pulled) small)
          true
          (counter d Instr.K.stream_pulled <= small);
        check_bool
          (Printf.sprintf "rows.scanned %d <= %d"
             (counter d Instr.K.rows_scanned) small)
          true
          (counter d Instr.K.rows_scanned <= small);
        check_bool "an early exit was recorded" true
          (counter d Instr.K.stream_early_exits > 0));
    case "fn:empty over a 10k-row scan pulls O(1)" (fun () ->
        let v, d = both "fn:empty(employee:EMPLOYEE())" in
        check_string "value" "false" v;
        check_bool "pulled O(1)" true
          (counter d Instr.K.stream_pulled <= small));
    case "fn:head over a 10k-row scan pulls O(1)" (fun () ->
        let v, d = both "fn:head(employee:EMPLOYEE())/EMP_ID/text()" in
        check_string "value" "1" v;
        check_bool
          (Printf.sprintf "rows.scanned %d <= %d"
             (counter d Instr.K.rows_scanned) small)
          true
          (counter d Instr.K.rows_scanned <= small));
    case "effective boolean value pulls O(1)" (fun () ->
        let v, d = both "if (employee:EMPLOYEE()) then 1 else 0" in
        check_string "value" "1" v;
        check_bool "pulled O(1)" true
          (counter d Instr.K.stream_pulled <= small);
        check_bool "scanned O(1)" true
          (counter d Instr.K.rows_scanned <= small));
    case "positional [1] pulls O(1)" (fun () ->
        let v, d = both "employee:EMPLOYEE()[1]/EMP_ID/text()" in
        check_string "value" "1" v;
        check_bool "scanned O(1)" true
          (counter d Instr.K.rows_scanned <= small));
    case "fn:subsequence pulls only up to its window" (fun () ->
        let v, d = both "fn:data(fn:subsequence(employee:EMPLOYEE(), 3, 2)/EMP_ID)" in
        check_string "value" "3 4" v;
        check_bool "scanned O(window)" true
          (counter d Instr.K.rows_scanned <= small));
    case "fn:count streams without materializing the scan" (fun () ->
        let v, d = both "fn:count(employee:EMPLOYEE())" in
        check_string "value" (string_of_int rows) v;
        check_int "every row pulled exactly once" rows
          (counter d Instr.K.stream_pulled);
        check_int "nothing materialized" 0
          (counter d Instr.K.stream_materialized));
    case "xqse iterate + break abandons the scan" (fun () ->
        let v, d =
          both
            "{ declare $n := 0; iterate $e over employee:EMPLOYEE() { set $n \
             := $n + 1; break(); } return value $n; }"
        in
        check_string "value" "1" v;
        check_bool
          (Printf.sprintf "rows.scanned %d <= %d"
             (counter d Instr.K.rows_scanned) small)
          true
          (counter d Instr.K.rows_scanned <= small);
        check_bool "an early exit was recorded" true
          (counter d Instr.K.stream_early_exits > 0));
    case "xqse iterate return value abandons the scan" (fun () ->
        let v, d =
          both
            "{ iterate $e over employee:EMPLOYEE() { return value \
             fn:data($e/EMP_ID); } return value 0; }"
        in
        check_string "value" "1" v;
        check_bool "scanned O(1)" true
          (counter d Instr.K.rows_scanned <= small));
    case "full consumption pulls every row in both modes" (fun () ->
        (* the laziness counters must not come at the cost of losing
           rows: a fold over the whole scan sees all of them *)
        let v, d =
          both "sum(for $e in employee:EMPLOYEE() return 1)"
        in
        check_string "value" (string_of_int rows) v;
        check_int "all rows scanned" rows (counter d Instr.K.rows_scanned));
  ]

(* range producers: no dataspace needed, the engine alone streams *)
let range_tests =
  let eval ~streaming ~instr src =
    let e = Xquery.Engine.create ~streaming ~instr () in
    Xdm.Xml_serialize.seq_to_string (Xquery.Engine.eval_string e src)
  in
  let with_counters src =
    let instr = Instr.create () in
    Instr.enable instr;
    let v = eval ~streaming:true ~instr src in
    let v' = eval ~streaming:false ~instr:Instr.disabled src in
    check_string ("modes agree on " ^ src) v' v;
    (v, Instr.stats instr)
  in
  [
    case "fn:head of a million-integer range pulls one item" (fun () ->
        let v, st = with_counters "fn:head(1 to 1000000)" in
        check_string "value" "1" v;
        check_bool "pulled O(1)" true
          (counter st Instr.K.stream_pulled <= small));
    case "fn:exists of a large range pulls one item" (fun () ->
        let v, st = with_counters "fn:exists(1 to 1000000)" in
        check_string "value" "true" v;
        check_bool "pulled O(1)" true
          (counter st Instr.K.stream_pulled <= small));
    case "quantified some stops at the witness" (fun () ->
        let v, st =
          with_counters "some $x in (1 to 1000000) satisfies $x eq 3"
        in
        check_string "value" "true" v;
        check_bool "pulled O(witness)" true
          (counter st Instr.K.stream_pulled <= small));
    case "fn:subsequence of a large range pulls its window" (fun () ->
        let v, st = with_counters "fn:subsequence(1 to 1000000, 5, 3)" in
        check_string "value" "5 6 7" v;
        check_bool "pulled O(window)" true
          (counter st Instr.K.stream_pulled <= small + 8));
    case "streamed FLWOR with infallible stages pulls O(prefix)" (fun () ->
        let v, st =
          with_counters
            "fn:head(for $x in (1 to 1000000) let $y := ($x, $x) return $y)"
        in
        check_string "value" "1" v;
        check_bool "pulled O(prefix)" true
          (counter st Instr.K.stream_pulled <= small));
    case "FLWOR with fallible stages falls back but agrees" (fun () ->
        (* [$x * 2] and [$y ge 10] may raise, so an early exit must not
           skip them: with more than one fallible deferred stage the
           engine materializes the source instead, trading laziness for
           identical error behavior — the value must still agree *)
        let v, _ =
          with_counters
            "fn:head(for $x in (1 to 100000) let $y := $x * 2 where $y ge 10 \
             return $y)"
        in
        check_string "value" "10" v);
  ]

(* Cursor lifecycle laws, tested on the module directly: [abandon] and
   [close] must be idempotent — a second abandon (or abandon after
   close, or an abandon reentering from inside the drain) must not
   re-run deferred effects, re-drain the producer, or double-bump the
   laziness counters. Consumers like iterate-with-break abandon from
   inside exception handlers, so double-abandon happens in practice. *)
let cursor_lifecycle_tests =
  let open Xdm in
  (* an impure 1..n counter that records every pull and cleanup *)
  let effectful ?instr n =
    let pulls = ref 0 and cleanups = ref 0 in
    let cur =
      Cursor.make ?instr
        ~cleanup:(fun () -> incr cleanups)
        (fun () ->
          if !pulls >= n then None
          else begin
            incr pulls;
            Some !pulls
          end)
    in
    (cur, pulls, cleanups)
  in
  [
    case "abandon twice drains effects once" (fun () ->
        let instr = Instr.create () in
        Instr.enable instr;
        let cur, pulls, cleanups = effectful ~instr 5 in
        check_int "first item" 1 (Option.get (Cursor.next cur));
        Cursor.abandon cur;
        check_int "drained to the end" 5 !pulls;
        check_int "cleanup ran" 1 !cleanups;
        let after_first = counter (Instr.stats instr) Instr.K.stream_pulled in
        Cursor.abandon cur;
        check_int "second abandon pulls nothing" 5 !pulls;
        check_int "cleanup still ran once" 1 !cleanups;
        check_int "counters not double-bumped" after_first
          (counter (Instr.stats instr) Instr.K.stream_pulled));
    case "abandon twice on a pure cursor bumps early_exits once" (fun () ->
        let instr = Instr.create () in
        Instr.enable instr;
        let cur = Cursor.make ~pure:true ~instr (fun () -> Some 1) in
        Cursor.abandon cur;
        Cursor.abandon cur;
        check_int "one early exit" 1
          (counter (Instr.stats instr) Instr.K.stream_early_exits));
    case "close then abandon does not resurrect the drain" (fun () ->
        let cur, pulls, cleanups = effectful 5 in
        Cursor.close cur;
        check_int "close ran cleanup" 1 !cleanups;
        Cursor.abandon cur;
        check_int "abandon after close pulls nothing" 0 !pulls;
        check_int "cleanup still once" 1 !cleanups);
    case "abandon reentering from inside the drain is a no-op" (fun () ->
        (* a producer whose pending effect itself abandons the cursor —
           the reentrant call must neither recurse nor reset state *)
        let pulls = ref 0 and cleanups = ref 0 in
        let rec cur =
          lazy
            (Cursor.make
               ~cleanup:(fun () -> incr cleanups)
               (fun () ->
                 if !pulls >= 3 then None
                 else begin
                   incr pulls;
                   Cursor.abandon (Lazy.force cur);
                   Some !pulls
                 end))
        in
        Cursor.abandon (Lazy.force cur);
        check_int "drained exactly once to the end" 3 !pulls;
        check_int "cleanup ran once" 1 !cleanups);
    case "abandon during next leaves the cursor done" (fun () ->
        let cur, pulls, _ = effectful 4 in
        ignore (Cursor.next cur);
        Cursor.abandon cur;
        check_bool "next after abandon is exhausted" true
          (Cursor.next cur = None);
        check_int "no further pulls" 4 !pulls);
    case "abandon propagates a deferred error exactly once" (fun () ->
        (* eager evaluation would raise while producing item 3: the
           drain must surface that error, and a second abandon must not
           raise it again *)
        let pulls = ref 0 in
        let cur =
          Cursor.make (fun () ->
              incr pulls;
              if !pulls >= 3 then
                Item.raise_error (Qname.err "FORG0001") "deferred failure"
              else Some !pulls)
        in
        (match Cursor.abandon cur with
        | () -> Alcotest.fail "expected the drained error to propagate"
        | exception Item.Error { code; _ } ->
          check_string "error code" "FORG0001" code.Qname.local);
        (* the failed drain closed the cursor: abandon and next are done *)
        Cursor.abandon cur;
        check_bool "cursor is exhausted after the failed drain" true
          (Cursor.next cur = None);
        check_int "producer not re-driven" 3 !pulls);
  ]

let suites =
  [
    ("streaming.early-exit", early_exit_tests);
    ("streaming.range", range_tests);
    ("streaming.cursor-lifecycle", cursor_lifecycle_tests);
  ]
