(* Session persistence: library variables, globals across programs, and
   optimizer equivalence at the XQSE statement level. *)

open Util
open Core

let persistence_tests =
  [
    case "library variables persist as globals" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.load_library s "declare variable $base := 100;";
        check_string "read" "101" (Xqse.Session.eval_to_string s "$base + 1");
        check_string "again" "200" (Xqse.Session.eval_to_string s "$base * 2"));
    case "library variables may depend on library functions" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.load_library s
          {|declare function local:five() { 5 };
            declare variable $ten := local:five() * 2;|};
        check_string "value" "10" (Xqse.Session.eval_to_string s "$ten"));
    case "later libraries see earlier globals" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.load_library s "declare variable $a := 3;";
        Xqse.Session.load_library s "declare variable $b := $a * 3;";
        check_string "chained" "9" (Xqse.Session.eval_to_string s "$b"));
    case "XQSE procedures read session globals" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.load_library s
          {|declare variable $rate := 2;
            declare readonly procedure local:scale($x as xs:integer) as xs:integer {
              return value $x * $rate;
            };|};
        check_string "uses global" "14" (Xqse.Session.eval_to_string s "local:scale(7)"));
    case "per-program declarations do not leak into the session" (fun () ->
        let s = Xqse.Session.create () in
        ignore
          (Xqse.Session.eval s
             "declare function local:tmp() { 1 }; local:tmp()");
        match Xqse.Session.eval s "local:tmp()" with
        | _ -> Alcotest.fail "expected XPST0017"
        | exception Xdm.Item.Error { code; _ } ->
          check_string "code" "XPST0017" code.Xdm.Qname.local);
    case "external library variable is rejected" (fun () ->
        let s = Xqse.Session.create () in
        match Xqse.Session.load_library s "declare variable $x external;" with
        | () -> Alcotest.fail "expected error"
        | exception Xdm.Item.Error { code; _ } ->
          check_string "code" "XPDY0002" code.Xdm.Qname.local);
    case "program-level variables override nothing permanently" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.load_library s "declare variable $v := 1;";
        check_string "shadowed inside program" "2"
          (Xqse.Session.eval_to_string s "declare variable $w := $v + 1; $w");
        check_string "original survives" "1" (Xqse.Session.eval_to_string s "$v"));
  ]

(* XQSE programs evaluated with and without the optimizer must agree —
   exercises the statement-level optimization path of Session. *)
let xqse_equivalence_programs =
  [
    {| {
      declare $sum := 0;
      iterate $x over (for $i in 1 to 20 where $i mod 3 eq 0 return $i) {
        set $sum := $sum + $x;
      }
      return value $sum;
    } |};
    {| {
      declare $hits := 0;
      iterate $a over (<r><k>1</k></r>, <r><k>2</k></r>, <r><k>3</k></r>) {
        declare $matches := (for $b in (<s><k>2</k></s>, <s><k>3</k></s>)
                             where $a/k eq $b/k return $b);
        set $hits := $hits + count($matches);
      }
      return value $hits;
    } |};
    {| {
      declare $r := "";
      if (1 + 1 eq 2) then set $r := concat("a", "b") else set $r := "no";
      while (string-length($r) lt 6) { set $r := concat($r, "c"); }
      return value $r;
    } |};
    {|
declare function local:gen($n as xs:integer) as element(v)* {
  for $i in 1 to $n return <v>{$i}</v>
};
{
  declare $total := 0;
  iterate $v over local:gen(10) {
    if (xs:integer($v) mod 2 eq 0) then continue();
    set $total := $total + xs:integer($v);
  }
  return value $total;
} |};
  ]

let equivalence_tests =
  List.mapi
    (fun i src ->
      case (Printf.sprintf "optimized session = unoptimized session #%d" i)
        (fun () ->
          let on = Xqse.Session.create ~optimize:true () in
          let off = Xqse.Session.create ~optimize:false () in
          check_string "agree"
            (Xqse.Session.eval_to_string off src)
            (Xqse.Session.eval_to_string on src)))
    xqse_equivalence_programs
  @ [
      prop "random XQSE accumulator loops agree across optimizer settings"
        ~count:40
        QCheck.(triple (int_range 1 30) (int_range 1 5) (int_range 0 4))
        (fun (n, step, threshold) ->
          let src =
            Printf.sprintf
              {| {
                declare $acc := 0, $i := 0;
                while ($i lt %d) {
                  set $i := $i + %d;
                  if ($i mod 5 lt %d) then continue();
                  set $acc := $acc + $i;
                }
                return value $acc;
              } |}
              n step threshold
          in
          let on = Xqse.Session.create ~optimize:true () in
          let off = Xqse.Session.create ~optimize:false () in
          Xqse.Session.eval_to_string on src
          = Xqse.Session.eval_to_string off src);
    ]

(* The session plan cache: repeated program texts must be served from
   cache (hit, no compile span), and anything that changes what a plan
   could have compiled against — a redefined function or procedure, a
   library load, an optimizer/streaming toggle — must stop the stale
   plan from being served. *)
let plan_cache_tests =
  let counter stats name =
    match List.assoc_opt name stats.Instr.counters with Some n -> n | None -> 0
  in
  let make () =
    let instr = Instr.create () in
    Instr.enable instr;
    let s = Xqse.Session.create ~instr () in
    (s, instr)
  in
  let delta instr f =
    let before = Instr.stats instr in
    let v = f () in
    (v, Instr.since instr before)
  in
  [
    case "repeated text hits the cache and skips the compile span" (fun () ->
        let s, instr = make () in
        let v1, d1 = delta instr (fun () -> Xqse.Session.eval_to_string s "1 + 2") in
        check_int "first run misses" 1 (counter d1 Instr.K.plan_cache_miss);
        check_int "first run compiles" 1 (counter d1 Instr.K.queries_compiled);
        let v2, d2 = delta instr (fun () -> Xqse.Session.eval_to_string s "1 + 2") in
        check_string "same value" v1 v2;
        check_int "second run hits" 1 (counter d2 Instr.K.plan_cache_hit);
        check_int "second run does not miss" 0 (counter d2 Instr.K.plan_cache_miss);
        check_int "second run does not compile" 0
          (counter d2 Instr.K.queries_compiled);
        (* [since] reports every known timer; the compile span must not
           have accumulated any time on the cached run *)
        check_bool "no time in the compile span" true
          (match List.assoc_opt "compile" d2.Instr.timers with
          | None -> true
          | Some t -> t = 0.0));
    case "a failed parse is a miss that never becomes a plan" (fun () ->
        let s, instr = make () in
        let run () =
          match Xqse.Session.eval_to_string s "1 +" with
          | _ -> Alcotest.fail "expected a syntax error"
          | exception _ -> ()
        in
        let (), d1 = delta instr run in
        check_int "miss recorded" 1 (counter d1 Instr.K.plan_cache_miss);
        check_int "nothing compiled" 0 (counter d1 Instr.K.queries_compiled);
        let (), d2 = delta instr run in
        check_int "still a miss, not a cached failure" 1
          (counter d2 Instr.K.plan_cache_miss);
        check_int "never a hit" 0 (counter d2 Instr.K.plan_cache_hit));
    case "installing a function invalidates plans that missed it" (fun () ->
        (* the stale-resolution scenario: a plan compiled while h:f was
           unknown must not be served once h:f exists (cached XPST0017
           forever); registration flushes the cache *)
        let s, instr = make () in
        let name = Xdm.Qname.make ~uri:"urn:host" ~prefix:"h" "f" in
        Xqse.Session.declare_namespace s "h" "urn:host";
        ignore (Xqse.Session.eval_to_string s "1 + 2");
        (match Xqse.Session.eval_to_string s "h:f()" with
        | v -> Alcotest.failf "expected XPST0017, got %s" v
        | exception Xdm.Item.Error { code; _ } ->
          check_string "unknown before install" "XPST0017" code.Xdm.Qname.local);
        let (), d =
          delta instr (fun () ->
              Xqse.Session.register_function s name 0 (fun _ -> Xdm.Item.int 7))
        in
        check_bool "cached plans flushed" true
          (counter d Instr.K.plan_cache_invalidate >= 1);
        let v, d2 = delta instr (fun () -> Xqse.Session.eval_to_string s "h:f()") in
        check_string "resolves after install" "7" v;
        check_int "recompiled, not served stale" 1
          (counter d2 Instr.K.plan_cache_miss);
        check_int "no stale hit" 0 (counter d2 Instr.K.plan_cache_hit));
    case "installing a procedure invalidates plans that missed it" (fun () ->
        let s, instr = make () in
        let name = Xdm.Qname.make ~uri:"urn:host" ~prefix:"h" "p" in
        Xqse.Session.declare_namespace s "h" "urn:host";
        let prog = "{ return value h:p(); }" in
        (match Xqse.Session.eval_to_string s prog with
        | v -> Alcotest.failf "expected an unknown-call error, got %s" v
        | exception Xdm.Item.Error _ -> ());
        let (), d =
          delta instr (fun () ->
              Xqse.Session.register_procedure s name 0 (fun _ ->
                  Xdm.Item.int 20))
        in
        check_bool "cached plans flushed" true
          (counter d Instr.K.plan_cache_invalidate >= 1);
        let v, d2 = delta instr (fun () -> Xqse.Session.eval_to_string s prog) in
        check_string "resolves after install" "20" v;
        check_int "recompiled" 1 (counter d2 Instr.K.plan_cache_miss);
        check_int "no stale hit" 0 (counter d2 Instr.K.plan_cache_hit));
    case "load_library invalidates cached plans" (fun () ->
        let s, instr = make () in
        ignore (Xqse.Session.eval_to_string s "1 + 2");
        Xqse.Session.load_library s "declare variable $lv := 5;";
        let _, d = delta instr (fun () -> Xqse.Session.eval_to_string s "1 + 2") in
        check_int "recompiled after load" 1 (counter d Instr.K.plan_cache_miss));
    case "streaming and optimizer toggles are fingerprint misses" (fun () ->
        let s, instr = make () in
        ignore (Xqse.Session.eval_to_string s "sum(1 to 9)");
        Xquery.Engine.set_streaming (Xqse.Session.engine s) false;
        let v, d = delta instr (fun () -> Xqse.Session.eval_to_string s "sum(1 to 9)") in
        check_string "same value materializing" "45" v;
        check_int "streaming toggle misses" 1 (counter d Instr.K.plan_cache_miss);
        Xquery.Engine.set_optimizing (Xqse.Session.engine s) false;
        let v2, d2 =
          delta instr (fun () -> Xqse.Session.eval_to_string s "sum(1 to 9)")
        in
        check_string "same value unoptimized" "45" v2;
        check_int "optimizer toggle misses" 1 (counter d2 Instr.K.plan_cache_miss);
        (* each miss re-stored the entry under the current fingerprint,
           so replaying under it is a hit again *)
        let _, d3 = delta instr (fun () -> Xqse.Session.eval_to_string s "sum(1 to 9)") in
        check_int "steady state hits" 1 (counter d3 Instr.K.plan_cache_hit);
        check_int "steady state does not recompile" 0
          (counter d3 Instr.K.queries_compiled));
    case "plans off bypasses the cache entirely" (fun () ->
        let s, instr = make () in
        Xquery.Engine.set_plans (Xqse.Session.engine s) false;
        ignore (Xqse.Session.eval_to_string s "1 + 2");
        let v, d = delta instr (fun () -> Xqse.Session.eval_to_string s "1 + 2") in
        check_string "value" "3" v;
        check_int "no hits" 0 (counter d Instr.K.plan_cache_hit);
        check_int "no misses" 0 (counter d Instr.K.plan_cache_miss);
        check_int "compiled each time" 1 (counter d Instr.K.queries_compiled));
    case "two sessions over one engine keep separate caches" (fun () ->
        let instr = Instr.create () in
        Instr.enable instr;
        let eng = Xquery.Engine.create ~instr () in
        let a = Xqse.Session.with_engine eng in
        let b = Xqse.Session.with_engine eng in
        let delta f =
          let before = Instr.stats instr in
          let v = f () in
          (v, Instr.since instr before)
        in
        ignore (Xqse.Session.eval_to_string a "2 * 3");
        (* the other session must not be served session A's plan *)
        let v, d = delta (fun () -> Xqse.Session.eval_to_string b "2 * 3") in
        check_string "value" "6" v;
        check_int "session B compiles its own plan" 1
          (counter d Instr.K.plan_cache_miss);
        check_int "no cross-session hit" 0 (counter d Instr.K.plan_cache_hit);
        (* session-local state changes must not go stale across sessions:
           a registration in A bumps the shared engine generation, so
           B recompiles rather than serving its now-stale plan *)
        let name = Xdm.Qname.make ~uri:"urn:host" ~prefix:"h" "g" in
        Xqse.Session.declare_namespace a "h" "urn:host";
        Xqse.Session.register_function a name 0 (fun _ -> Xdm.Item.int 7);
        let _, d2 = delta (fun () -> Xqse.Session.eval_to_string b "2 * 3") in
        check_int "B recompiles after A's registration" 1
          (counter d2 Instr.K.plan_cache_miss));
  ]

(* The config record: one immutable value carrying everything the old
   mutator calls set, with with_config as the concurrent-safe way to get
   a differently-configured (or identically-configured) session. *)
let config_tests =
  let counter stats name =
    match List.assoc_opt name stats.Instr.counters with Some n -> n | None -> 0
  in
  [
    case "create ~config round-trips through config" (fun () ->
        let cfg = { Xqse.Session.default_config with streaming = false } in
        let s = Xqse.Session.create ~config:cfg () in
        let got = Xqse.Session.config s in
        check_bool "streaming off" false got.Xqse.Session.streaming;
        check_bool "plans on" true got.Xqse.Session.plans;
        check_bool "optimize on" true got.Xqse.Session.optimize;
        check_bool "session agrees" false (Xqse.Session.streaming s));
    case "removed mutator shims raise, naming the replacement" (fun () ->
        (* the PR 7 deprecated shims are gone: mutating a session another
           domain is executing against is a race, and nothing in-tree
           called them. The error message is pinned so callers migrating
           old code are told exactly what to use instead. *)
        let s = Xqse.Session.create () in
        let expect name f =
          match f () with
          | () -> Alcotest.failf "%s did not raise" name
          | exception Invalid_argument msg ->
            check_string name
              (Printf.sprintf
                 "Xqse.Session.%s was removed: set the flag in the config \
                  record at create, or fork a reconfigured session with \
                  with_config" name)
              msg
        in
        expect "set_streaming" (fun () -> Xqse.Session.set_streaming s false);
        expect "set_plans" (fun () -> Xqse.Session.set_plans s false);
        (* the session is untouched by the failed calls *)
        let got = Xqse.Session.config s in
        check_bool "streaming unchanged" true got.Xqse.Session.streaming;
        check_bool "plans unchanged" true got.Xqse.Session.plans;
        check_string "still evaluates" "6" (Xqse.Session.eval_to_string s "2*3"));
    case "with_config forks are independent both ways" (fun () ->
        let a = Xqse.Session.create () in
        Xqse.Session.load_library a "declare variable $base := 10;";
        let b = Xqse.Session.with_config a (Xqse.Session.config a) in
        check_string "fork sees pre-fork library" "10"
          (Xqse.Session.eval_to_string b "$base");
        (* post-fork registrations stay on their side *)
        let na = Xdm.Qname.make ~uri:"urn:a" ~prefix:"qa" "f" in
        Xqse.Session.declare_namespace a "qa" "urn:a";
        Xqse.Session.register_function a na 0 (fun _ -> Xdm.Item.int 1);
        let nb = Xdm.Qname.make ~uri:"urn:b" ~prefix:"qb" "g" in
        Xqse.Session.declare_namespace b "qb" "urn:b";
        Xqse.Session.register_function b nb 0 (fun _ -> Xdm.Item.int 2);
        check_string "a's function in a" "1"
          (Xqse.Session.eval_to_string a "qa:f()");
        check_string "b's function in b" "2"
          (Xqse.Session.eval_to_string b "qb:g()");
        (* the other side has neither the function nor even the prefix *)
        (match Xqse.Session.eval_to_string b "qa:f()" with
        | v -> Alcotest.failf "fork saw post-fork registration: %s" v
        | exception (Xdm.Item.Error _ | Xquery.Parser.Syntax_error _) -> ());
        match Xqse.Session.eval_to_string a "qb:g()" with
        | v -> Alcotest.failf "source saw fork registration: %s" v
        | exception (Xdm.Item.Error _ | Xquery.Parser.Syntax_error _) -> ());
    case "with_config re-homes XQSE procedures onto the fork" (fun () ->
        (* a readonly procedure registered before the fork must execute
           against the fork's runtime, not call back into the source *)
        let a = Xqse.Session.create () in
        Xqse.Session.load_library a
          {|declare variable $scale := 3;
            declare readonly procedure local:triple($x as xs:integer) as xs:integer {
              return value $x * $scale;
            };|};
        let b =
          Xqse.Session.with_config a
            { (Xqse.Session.config a) with streaming = false }
        in
        check_string "procedure runs in the fork" "12"
          (Xqse.Session.eval_to_string b "local:triple(4)");
        check_string "and still in the source" "12"
          (Xqse.Session.eval_to_string a "local:triple(4)"));
    case "registrations racing warm lookups never serve stale plans"
      (fun () ->
        (* the regression the atomic generation + fingerprint-guarded
           insert exist for: one domain hammers a cached program while
           another keeps invalidating; after the dust settles the next
           registration must be visible immediately *)
        let instr = Instr.create () in
        Instr.enable instr;
        let s = Xqse.Session.create ~instr () in
        let stop = Stdlib.Atomic.make false in
        let invalidator =
          Domain.spawn (fun () ->
              while not (Stdlib.Atomic.get stop) do
                Xqse.Session.invalidate_plans s
              done)
        in
        for _ = 1 to 2_000 do
          check_string "value stays right under races" "6"
            (Xqse.Session.eval_to_string s "2 * 3")
        done;
        Stdlib.Atomic.set stop true;
        Domain.join invalidator;
        let st = Instr.stats instr in
        check_bool "invalidations were observed" true
          (counter st Instr.K.plan_cache_invalidate >= 1);
        (* the registration that used to lose the race *)
        let name = Xdm.Qname.make ~uri:"urn:late" ~prefix:"lt" "f" in
        Xqse.Session.declare_namespace s "lt" "urn:late";
        Xqse.Session.register_function s name 0 (fun _ -> Xdm.Item.int 99);
        check_string "post-race registration resolves" "99"
          (Xqse.Session.eval_to_string s "lt:f()");
        check_string "warm text still correct" "6"
          (Xqse.Session.eval_to_string s "2 * 3"));
  ]

let suites =
  [
    ("session.persistence", persistence_tests);
    ("session.opt-equivalence", equivalence_tests);
    ("session.plan-cache", plan_cache_tests);
    ("session.config", config_tests);
  ]
