(* The purity/effect analysis that gates the cost-based optimizer
   rewrites. Three layers of coverage:

   - the builtin effect table must classify every function the standard
     registry actually installs (a new builtin without a verdict would
     silently pessimize every call site to impure — or worse, a wrong
     arity would);
   - the fixpoint over user function declarations (mutual recursion,
     trace-calling bodies, externals);
   - adversarial shapes where a wrong verdict changes semantics: shadowed
     same-name functions across programs, [fn:trace]-bound lets, and
     context-dependent ([fn:position]) values near shifted focus. *)

open Util
open Core
open Xquery

let parse src =
  Parser.parse_expression (Context.default_static ()) src

let analyze ?(env = Purity.empty_env) src = Purity.analyze env (parse src)

let stats_of src = snd (Optimizer.optimize_with_stats (parse src))

(* function declarations of a parsed module, plus an environment built
   the way Engine.compile builds one *)
let decls_of src =
  let m = Parser.parse_module (Context.default_static ()) src in
  List.filter_map
    (function Ast.P_function d -> Some d | _ -> None)
    m.Ast.prolog

let env_of src =
  Purity.env_for ~registry:(Builtins.standard_registry ()) (decls_of src)

let verdict_of env decls name =
  match
    List.find_opt (fun d -> d.Ast.fd_name.Xdm.Qname.local = name) decls
  with
  | None -> Alcotest.failf "no declaration named %s" name
  | Some d -> (
    match Purity.lookup env d.Ast.fd_name (List.length d.Ast.fd_params) with
    | Some v -> v
    | None -> Alcotest.failf "no verdict for %s" name)

let table_tests =
  [
    case "every installed builtin has a verdict" (fun () ->
        (* the table is complete by construction of this test: adding a
           builtin to the registry without classifying it fails here *)
        let reg = Builtins.standard_registry () in
        let missing =
          Context.fold reg ~init:[] ~f:(fun acc f ->
              match f.Context.fn_impl with
              | Context.Builtin _ -> (
                match
                  Purity.builtin_verdict f.Context.fn_name f.Context.fn_arity
                with
                | Some _ -> acc
                | None ->
                  Printf.sprintf "%s/%d"
                    (Xdm.Qname.to_string f.Context.fn_name)
                    f.Context.fn_arity
                  :: acc)
              | _ -> acc)
        in
        if missing <> [] then
          Alcotest.failf "builtins without a purity verdict: %s"
            (String.concat ", " (List.sort compare missing)));
    case "fn:count is total" (fun () ->
        check_bool "total" true
          (Purity.builtin_verdict (Xdm.Qname.fn "count") 1 = Some Purity.total));
    case "fn:current-date is total" (fun () ->
        (* stable within one evaluation, so duplication is unobservable *)
        check_bool "total" true
          (Purity.builtin_verdict (Xdm.Qname.fn "current-date") 0
          = Some Purity.total));
    case "fn:trace is effectful" (fun () ->
        match Purity.builtin_verdict (Xdm.Qname.fn "trace") 2 with
        | Some v -> check_bool "effects" true v.Purity.effects
        | None -> Alcotest.fail "fn:trace unclassified");
    case "fn:error is fallible but not effectful" (fun () ->
        match Purity.builtin_verdict (Xdm.Qname.fn "error") 0 with
        | Some v ->
          check_bool "fallible" true v.Purity.fallible;
          check_bool "no effects" false v.Purity.effects
        | None -> Alcotest.fail "fn:error unclassified");
    case "xs constructors are pure but fallible" (fun () ->
        match Purity.builtin_verdict (Xdm.Qname.xs "integer") 1 with
        | Some v ->
          check_bool "fallible" true v.Purity.fallible;
          check_bool "no effects" false v.Purity.effects;
          check_bool "no construction" false v.Purity.constructs
        | None -> Alcotest.fail "xs:integer unclassified");
    case "unknown names and arities are unclassified" (fun () ->
        check_bool "unknown name" true
          (Purity.builtin_verdict (Xdm.Qname.fn "no-such-function") 1 = None);
        check_bool "known name, wrong arity" true
          (Purity.builtin_verdict (Xdm.Qname.fn "count") 2 = None);
        (* regression: total names used to get a verdict at any
           arity <= 1 — fn:true#1 and fn:exists#0 are never installed,
           so they must stay unclassified (hence impure at call sites) *)
        check_bool "total name, uninstalled arity (true#1)" true
          (Purity.builtin_verdict (Xdm.Qname.fn "true") 1 = None);
        check_bool "total name, uninstalled arity (exists#0)" true
          (Purity.builtin_verdict (Xdm.Qname.fn "exists") 0 = None));
    case "empty env still resolves builtins" (fun () ->
        check_bool "count total via lookup" true
          (Purity.lookup Purity.empty_env (Xdm.Qname.fn "count") 1
          = Some Purity.total));
  ]

let analysis_tests =
  [
    case "literals and arithmetic" (fun () ->
        check_bool "literal total" true (analyze "42" = Purity.total);
        check_bool "arith fallible" true
          ((analyze "1 + 2").Purity.fallible);
        check_bool "arith pure" false ((analyze "1 + 2").Purity.effects));
    case "construction is tracked" (fun () ->
        check_bool "element ctor constructs" true
          ((analyze "<a/>").Purity.constructs);
        check_bool "transform constructs" true
          ((analyze
              "copy $c := <a/> modify insert node <b/> into $c return $c")
             .Purity.constructs);
        check_bool "count(...) of ctor still constructs" true
          ((analyze "count((<a/>, <b/>))").Purity.constructs));
    case "position and last are pure but context-dependent" (fun () ->
        let v = analyze "position()" in
        check_bool "no effects" false v.Purity.effects;
        check_bool "fallible (no focus => XPDY0002)" true v.Purity.fallible);
    case "boolean_valued recognizes boolean shapes" (fun () ->
        let bv src = Purity.boolean_valued (parse src) in
        check_bool "comparison" true (bv "1 eq 2");
        check_bool "and over comparisons" true (bv "(1 eq 2) and (3 lt 4)");
        check_bool "exists" true (bv "exists((1,2))");
        check_bool "if with boolean branches" true
          (bv "if (1 eq 1) then true() else false()");
        check_bool "integer is not boolean" false (bv "3");
        check_bool "filter is unknown" false (bv "(1,2)[1]"));
  ]

let fixpoint_tests =
  [
    case "mutually recursive pure functions converge to pure" (fun () ->
        let src =
          "declare function local:even($n as xs:integer) as xs:boolean { if \
           ($n eq 0) then true() else local:odd($n - 1) }; declare function \
           local:odd($n as xs:integer) as xs:boolean { if ($n eq 0) then \
           false() else local:even($n - 1) }; 0"
        in
        let decls = decls_of src and env = env_of src in
        let even = verdict_of env decls "even" in
        let odd = verdict_of env decls "odd" in
        check_bool "even pure" false even.Purity.effects;
        check_bool "odd pure" false odd.Purity.effects;
        (* recursion depth is checked dynamically, so user functions are
           always fallible no matter how tame the body *)
        check_bool "even fallible" true even.Purity.fallible;
        check_bool "even does not construct" false even.Purity.constructs);
    case "a trace call poisons the whole call chain" (fun () ->
        let src =
          "declare function local:dbg($x as xs:integer) as xs:integer { \
           fn:trace($x, \"dbg\") }; declare function local:caller($x as \
           xs:integer) as xs:integer { local:dbg($x) + 1 }; 0"
        in
        let decls = decls_of src and env = env_of src in
        check_bool "dbg effectful" true (verdict_of env decls "dbg").Purity.effects;
        check_bool "caller effectful" true
          (verdict_of env decls "caller").Purity.effects);
    case "a constructing body propagates through the fixpoint" (fun () ->
        let src =
          "declare function local:mk($n as xs:integer) as element() { \
           <n>{$n}</n> }; declare function local:wrap($n as xs:integer) as \
           element() { local:mk($n + 1) }; 0"
        in
        let decls = decls_of src and env = env_of src in
        check_bool "mk constructs" true (verdict_of env decls "mk").Purity.constructs;
        check_bool "wrap constructs" true
          (verdict_of env decls "wrap").Purity.constructs);
    case "externals are impure" (fun () ->
        let reg = Builtins.standard_registry () in
        let host = Xdm.Qname.make ~uri:"urn:host" "lookup" in
        Context.register_external reg host 1 (fun _ -> []);
        let env = Purity.env_for ~registry:reg [] in
        check_bool "external impure" true
          (Purity.lookup env host 1 = Some Purity.impure));
    case "a decl shadowing a registry user function takes precedence" (fun () ->
        (* regression: on a name/arity collision both bodies stayed on
           the fixpoint worklist — each iteration wrote the decl's
           verdict and then the registry body's over it, so when the
           two disagreed [env_for] flipped forever and never returned.
           The decl's body must be the one analyzed. *)
        let reg = Builtins.standard_registry () in
        let impure_d =
          List.hd
            (decls_of
               "declare function local:f($x as xs:integer) as xs:integer { \
                fn:trace($x, \"f\") }; 0")
        in
        Context.register reg
          {
            Context.fn_name = impure_d.Ast.fd_name;
            fn_arity = List.length impure_d.Ast.fd_params;
            fn_params = List.map snd impure_d.Ast.fd_params;
            fn_return = impure_d.Ast.fd_return;
            fn_impl = Context.User impure_d;
            fn_side_effects = false;
            fn_purity = None;
          };
        let decls =
          decls_of
            "declare function local:f($x as xs:integer) as xs:integer { $x \
             + 1 }; 0"
        in
        let env = Purity.env_for ~registry:reg decls in
        let v = verdict_of env decls "f" in
        check_bool "decl's pure body wins" false v.Purity.effects);
    case "redeclaring a loaded library function reports XQST0034" (fun () ->
        (* the session path that reached the collision: the purity
           environment is built before registration raises, so this
           used to hang instead of erroring *)
        let sess = Xqse.Session.create () in
        Xqse.Session.load_library sess
          "declare namespace lib = \"urn:lib\"; declare function lib:f($x \
           as xs:integer) as xs:integer { fn:trace($x, \"lib\") };";
        match
          Xqse.Session.eval_to_string sess
            "declare namespace lib = \"urn:lib\"; declare function lib:f($x \
             as xs:integer) as xs:integer { $x + 1 }; lib:f(1)"
        with
        | result -> Alcotest.failf "expected XQST0034, got %s" result
        | exception Xdm.Item.Error { code; _ } ->
          check_string "duplicate function" "XQST0034" code.Xdm.Qname.local);
    case "calls to unknown functions are impure" (fun () ->
        let env = env_of "0" in
        let call = Ast.Call (Xdm.Qname.make ~uri:"urn:mystery" "f", []) in
        check_bool "unknown call impure" true
          (Purity.analyze env call = Purity.impure));
  ]

(* Adversarial: shapes where a wrong verdict would change semantics. The
   differential corpus provides breadth; these name the construct. *)
let adversarial_tests =
  [
    case "same name, different programs, different verdicts" (fun () ->
        (* the environment is per-program: local:f here is pure, local:f
           there calls fn:trace — a global cache keyed by name alone
           would let the pure verdict license inlining the impure one *)
        let pure_env_src =
          "declare function local:f($x as xs:integer) as xs:integer { $x + 1 \
           }; 0"
        and impure_env_src =
          "declare function local:f($x as xs:integer) as xs:integer { \
           fn:trace($x, \"f\") }; 0"
        in
        let d1 = decls_of pure_env_src and e1 = env_of pure_env_src in
        let d2 = decls_of impure_env_src and e2 = env_of impure_env_src in
        check_bool "pure program's f" false (verdict_of e1 d1 "f").Purity.effects;
        check_bool "impure program's f" true (verdict_of e2 d2 "f").Purity.effects);
    case "trace-bound let is never inlined or dropped" (fun () ->
        let st = stats_of "let $x := fn:trace(1, \"m\") return $x + 1" in
        check_int "inlined" 0 st.Optimizer.inlined;
        check_int "inlined_pure" 0 st.Optimizer.inlined_pure;
        let unused = stats_of "let $x := fn:trace(1, \"m\") return 7" in
        check_int "unused trace kept" 0 unused.Optimizer.inlined_pure);
    case "trace fires the same number of times optimized" (fun () ->
        let runs optimize =
          let n = ref 0 in
          let eng = Engine.create ~optimize () in
          let opts =
            { Engine.default_run_opts with trace = Some (fun _ -> incr n) }
          in
          ignore
            (Engine.eval_string ~opts eng
               "let $x := fn:trace(3, \"t\") return $x * $x");
          !n
        in
        check_int "one trace either way" (runs false) (runs true));
    case "position-bound let inlines only into the same focus" (fun () ->
        (* head position, same focus: inlining position() is safe *)
        let head = "(4,5,6)[let $p := position() return $p eq 2]" in
        check_int "head inline fires" 1 (stats_of head).Optimizer.inlined_pure;
        check_string "head inline agrees" (xq_noopt head) (xq head);
        (* occurrence inside a nested predicate: substituting would
           rebind position() to the inner focus — must keep the let *)
        let shifted =
          "(4,5,6)[let $p := position() return exists((1,2)[. le $p])]"
        in
        check_int "shifted occurrence kept" 0
          (stats_of shifted).Optimizer.inlined_pure;
        check_string "shifted agrees" (xq_noopt shifted) (xq shifted));
    case "last-bound let behaves like position" (fun () ->
        let src = "(4,5,6)[let $n := last() return position() eq $n]" in
        check_string "result" "6" (xq src);
        check_string "agrees" (xq_noopt src) (xq src));
  ]

(* XQSE readonly procedures register as callable functions carrying the
   purity verdict of their statement body (Interp.declare_procedure), so
   [env_for] classifies calls to them instead of defaulting to impure. *)

let xqse_proc_verdict ?(register = fun _ -> ()) src local =
  let s = Xqse.Session.create () in
  register s;
  if src <> "" then Xqse.Session.load_library s src;
  let reg = Xquery.Engine.registry (Xqse.Session.engine s) in
  let env = Purity.env_for ~registry:reg [] in
  let fn =
    Context.fold reg ~init:None ~f:(fun acc f ->
        if acc = None && f.Context.fn_name.Xdm.Qname.local = local then Some f
        else acc)
  in
  match fn with
  | None -> Alcotest.failf "procedure %s was not registered as a function" local
  | Some f -> (
    match Purity.lookup env f.Context.fn_name f.Context.fn_arity with
    | Some v -> v
    | None -> Alcotest.failf "no verdict for %s" local)

let xqse_procedure_tests =
  [
    case "readonly procedure with a pure body is analyzable" (fun () ->
        let v =
          xqse_proc_verdict
            {|declare readonly procedure local:double($x as xs:integer) as xs:integer {
                return value $x * 2;
              };|}
            "double"
        in
        check_bool "no effects" false v.Purity.effects;
        check_bool "fallible (type checks can raise)" true v.Purity.fallible;
        check_bool "no construction" false v.Purity.constructs);
    case "constructing body is reported" (fun () ->
        let v =
          xqse_proc_verdict
            {|declare readonly procedure local:wrap($x as xs:integer) {
                return value <wrapped>{$x}</wrapped>;
              };|}
            "wrap"
        in
        check_bool "no effects" false v.Purity.effects;
        check_bool "constructs" true v.Purity.constructs);
    case "effectful body (fn:trace) is reported" (fun () ->
        let v =
          xqse_proc_verdict
            {|declare readonly procedure local:noisy() {
                return value fn:trace(1, "noisy");
              };|}
            "noisy"
        in
        check_bool "effects" true v.Purity.effects);
    case "statements are walked, not just the returned expression" (fun () ->
        (* the effectful expression hides inside a loop body statement *)
        let v =
          xqse_proc_verdict
            {|declare readonly procedure local:loud($n as xs:integer) {
                declare $i := 0;
                while ($i lt $n) {
                  set $i := fn:trace($i + 1, "tick");
                }
                return value $i;
              };|}
            "loud"
        in
        check_bool "effects" true v.Purity.effects);
    case "host-registered external procedure stays opaque" (fun () ->
        (* no body to analyze: calls must pessimize to impure *)
        let v =
          xqse_proc_verdict ""
            ~register:(fun s ->
              Xqse.Session.register_procedure s ~readonly:true
                (Xdm.Qname.local "hostp") 0
                (fun _ -> []))
            "hostp"
        in
        check_bool "effects (opaque)" true v.Purity.effects;
        check_bool "fallible (opaque)" true v.Purity.fallible);
  ]

let suites =
  [
    ("purity.table", table_tests);
    ("purity.analysis", analysis_tests);
    ("purity.fixpoint", fixpoint_tests);
    ("purity.adversarial", adversarial_tests);
    ("purity.xqse-procedures", xqse_procedure_tests);
  ]
