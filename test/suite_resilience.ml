(* The source resilience layer: virtual clock, seeded fault plans,
   retry/timeout/backoff policies, circuit breakers, degradable reads,
   strict submits, and the chaos harness's atomicity invariant. *)

open Util
open Core
open Core.Xdm
module FE = Fixtures.Employees
module FC = Fixtures.Customer_profile
module R = Relational
module Res = Resilience

let uc qname_local = Qname.make ~uri:FE.usecases_ns qname_local

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let employee_xml id name =
  List.hd
    (Xml_parse.parse_fragment
       (Printf.sprintf
          {|<e:Employee xmlns:e="urn:employees"><EmployeeID>%d</EmployeeID><Name>%s</Name><DeptNo>10</DeptNo><ManagerID>1</ManagerID><Salary>50000</Salary></e:Employee>|}
          id name))

let counter instr name =
  match List.assoc_opt name (Instr.stats instr).Instr.counters with
  | Some v -> v
  | None -> 0

let fresh_instr () =
  let instr = Instr.create () in
  Instr.enable instr;
  Instr.preregister instr;
  instr

(* a schedule literal for targeted fault tests *)
let sched ?(transients = []) ?(spikes = []) ?(windows = []) ?(prepares = [])
    ?(commits = []) source =
  {
    Res.Plan.s_source = source;
    s_transients = transients;
    s_spikes = spikes;
    s_windows = windows;
    s_prepares = prepares;
    s_commits = commits;
  }

let clock_tests =
  [
    case "advance accumulates, ignores non-positive" (fun () ->
        let c = Res.Clock.create () in
        Res.Clock.advance c 10.;
        Res.Clock.advance c 0.;
        Res.Clock.advance c (-5.);
        Res.Clock.advance c 2.5;
        check_bool "now" true (Res.Clock.now c = 12.5));
    case "same seed, same rng stream" (fun () ->
        let a = Res.Rng.make 42 and b = Res.Rng.make 42 in
        for _ = 1 to 50 do
          check_int "step" (Res.Rng.int a 1000) (Res.Rng.int b 1000)
        done);
    case "different seeds diverge" (fun () ->
        let a = Res.Rng.make 1 and b = Res.Rng.make 2 in
        let sa = List.init 20 (fun _ -> Res.Rng.int a 1000) in
        let sb = List.init 20 (fun _ -> Res.Rng.int b 1000) in
        check_bool "diverge" true (sa <> sb));
  ]

let plan_tests =
  [
    case "schedule is a pure function of seed and source" (fun () ->
        let s1 =
          Res.Plan.schedule_for
            (Res.Plan.make ~seed:11 ~profile:Res.Plan.Heavy ())
            ~source:"db1"
        and s2 =
          Res.Plan.schedule_for
            (Res.Plan.make ~seed:11 ~profile:Res.Plan.Heavy ())
            ~source:"db1"
        in
        check_bool "replay" true (s1 = s2));
    case "different sources get different schedules" (fun () ->
        let plan = Res.Plan.make ~seed:11 ~profile:Res.Plan.Heavy () in
        check_bool "distinct" true
          (Res.Plan.schedule_for plan ~source:"db1"
          <> Res.Plan.schedule_for plan ~source:"db2"));
    case "different seeds get different schedules" (fun () ->
        let at seed =
          Res.Plan.schedule_for
            (Res.Plan.make ~seed ~profile:Res.Plan.Heavy ())
            ~source:"db1"
        in
        check_bool "distinct" true (at 1 <> at 2));
    case "calm profile never schedules hard-down windows" (fun () ->
        for seed = 1 to 20 do
          let s =
            Res.Plan.schedule_for
              (Res.Plan.make ~seed ~profile:Res.Plan.Calm ())
              ~source:"db1"
          in
          check_int "windows" 0 (List.length s.Res.Plan.s_windows)
        done);
    case "commit faults never exceed two consecutive rounds" (fun () ->
        for seed = 1 to 40 do
          let s =
            Res.Plan.schedule_for
              (Res.Plan.make ~seed ~profile:Res.Plan.Heavy ())
              ~source:"dbx"
          in
          let rec streak best run = function
            | a :: (b :: _ as rest) when b = a + 1 ->
              streak (max best (run + 1)) (run + 1) rest
            | _ :: rest -> streak best 1 rest
            | [] -> best
          in
          check_bool "bounded" true
            (streak 1 1 (List.sort compare s.Res.Plan.s_commits) <= 2)
        done);
    case "profile name round-trip" (fun () ->
        List.iter
          (fun p ->
            check_bool "roundtrip" true
              (Res.Plan.profile_of_string (Res.Plan.profile_to_string p)
              = Some p))
          [ Res.Plan.Calm; Res.Plan.Light; Res.Plan.Heavy ]);
  ]

let fault_tests =
  [
    case "ad-hoc one-shots fire on statements, not reads" (fun () ->
        let f = Res.Faults.create ~source:"db" () in
        Res.Faults.inject_next f "blip";
        check_bool "read skips" true
          ((Res.Faults.on_call f Res.Faults.Read).v_fault = None);
        check_bool "statement faults" true
          ((Res.Faults.on_call f Res.Faults.Statement).v_fault <> None);
        check_bool "once" true
          ((Res.Faults.on_call f Res.Faults.Statement).v_fault = None));
    case "scheduled transient fires at its call index" (fun () ->
        let f = Res.Faults.create ~source:"db" () in
        Res.Faults.set_schedule f (sched ~transients:[ 2 ] "db");
        check_bool "call 1 ok" true
          ((Res.Faults.on_call f Res.Faults.Read).v_fault = None);
        match (Res.Faults.on_call f Res.Faults.Read).v_fault with
        | Some fl -> check_bool "transient" true fl.Res.Faults.f_transient
        | None -> Alcotest.fail "expected a fault at call 2");
    case "latency spikes are charged to the virtual clock" (fun () ->
        let f = Res.Faults.create ~source:"db" () in
        Res.Faults.set_schedule f (sched ~spikes:[ (1, 25.) ] "db");
        let v = Res.Faults.on_call f Res.Faults.Read in
        check_bool "latency" true (v.Res.Faults.v_latency = 25.);
        check_bool "clock" true (Res.Clock.now (Res.Faults.clock f) = 25.));
    case "hard-down windows fault by virtual time, not call count" (fun () ->
        let f = Res.Faults.create ~source:"db" () in
        Res.Faults.set_schedule f
          (sched ~windows:[ { Res.Plan.w_from = 0.; w_until = 100. } ] "db");
        (match (Res.Faults.on_call f Res.Faults.Read).v_fault with
        (* transient: a retry whose backoff outlasts the window succeeds *)
        | Some fl -> check_bool "retryable" true fl.Res.Faults.f_transient
        | None -> Alcotest.fail "expected a window fault");
        Res.Clock.advance (Res.Faults.clock f) 150.;
        check_bool "after window" true
          ((Res.Faults.on_call f Res.Faults.Read).v_fault = None));
    case "take_last clears the side channel" (fun () ->
        let f = Res.Faults.create ~source:"db" () in
        Res.Faults.inject_next f "blip";
        ignore (Res.Faults.on_call f Res.Faults.Statement);
        check_bool "present" true (Res.Faults.take_last f <> None);
        check_bool "cleared" true (Res.Faults.take_last f = None));
  ]

let breaker_tests =
  [
    case "trips after consecutive failures, probes after cooldown" (fun () ->
        let clock = Res.Clock.create () in
        let b =
          Res.Breaker.create
            ~config:{ Res.Breaker.failure_threshold = 2; cooldown_ms = 100. }
            clock
        in
        check_bool "closed allows" true (Res.Breaker.allow b);
        check_bool "1st failure" false (Res.Breaker.on_failure b);
        check_bool "2nd failure trips" true (Res.Breaker.on_failure b);
        check_bool "open rejects" false (Res.Breaker.allow b);
        check_bool "peek rejects" false (Res.Breaker.would_allow b);
        Res.Clock.advance clock 150.;
        check_bool "peek would probe" true (Res.Breaker.would_allow b);
        check_bool "probe allowed" true (Res.Breaker.allow b);
        check_bool "half-open" true (Res.Breaker.state b = Res.Breaker.Half_open);
        Res.Breaker.on_success b;
        check_bool "closed again" true (Res.Breaker.state b = Res.Breaker.Closed));
    case "failed half-open probe re-trips" (fun () ->
        let clock = Res.Clock.create () in
        let b =
          Res.Breaker.create
            ~config:{ Res.Breaker.failure_threshold = 1; cooldown_ms = 100. }
            clock
        in
        ignore (Res.Breaker.on_failure b);
        Res.Clock.advance clock 150.;
        check_bool "probe" true (Res.Breaker.allow b);
        check_bool "re-trip" true (Res.Breaker.on_failure b);
        check_bool "open" true (Res.Breaker.state b = Res.Breaker.Open);
        check_int "trips" 2 (Res.Breaker.trips b));
  ]

let guard_tests =
  let setup ?plan ?policy () =
    let instr = fresh_instr () in
    let ctl = Res.Control.create ?plan ~instr () in
    let f = Res.Faults.create ~source:"src" () in
    Res.Control.attach ctl f;
    (match policy with
    | Some p -> Res.Control.set_policy ctl ~source:"src" p
    | None -> ());
    (ctl, f, instr)
  in
  (* a guarded call that consults the fault handle like a real source *)
  let consult f () =
    match (Res.Faults.on_call f Res.Faults.Statement).v_fault with
    | Some fl -> failwith fl.Res.Faults.f_message
    | None -> "ok"
  in
  [
    case "default policy is a transparent pass-through" (fun () ->
        let ctl, f, _ = setup () in
        Res.Faults.inject_next f "boom";
        match Res.Control.guard ctl ~source:"src" (consult f) with
        | _ -> Alcotest.fail "expected the native failure"
        | exception Failure msg -> check_string "native" "boom" msg);
    case "transient injected failures are retried" (fun () ->
        let ctl, f, instr =
          setup ~policy:(Res.Policy.make ~max_retries:2 ()) ()
        in
        Res.Faults.inject_next f "blip";
        check_string "recovered" "ok"
          (Res.Control.guard ctl ~source:"src" (consult f));
        check_int "retries" 1 (counter instr Instr.K.resil_retries);
        check_bool "backoff advanced the clock" true
          (Res.Clock.now (Res.Control.clock ctl) > 0.));
    case "exhausted retries raise err:RESX0003" (fun () ->
        let ctl, f, instr =
          setup ~policy:(Res.Policy.make ~max_retries:2 ()) ()
        in
        Res.Faults.set_fail_every f (Some 1);
        match Res.Control.guard ctl ~source:"src" (consult f) with
        | _ -> Alcotest.fail "expected exhaustion"
        | exception Res.Control.Error { code; _ } ->
          check_string "code" "RESX0003" (Res.Control.code_name code);
          check_int "retries" 2 (counter instr Instr.K.resil_retries));
    case "genuine failures are never retried" (fun () ->
        let ctl, _, instr =
          setup ~policy:(Res.Policy.make ~max_retries:3 ()) ()
        in
        match
          Res.Control.guard ctl ~source:"src" (fun () -> failwith "genuine")
        with
        | _ -> Alcotest.fail "expected the failure through"
        | exception Failure msg ->
          check_string "native" "genuine" msg;
          check_int "no retries" 0 (counter instr Instr.K.resil_retries));
    case "virtual-time deadline raises err:RESX0001" (fun () ->
        let ctl, _, instr =
          setup ~policy:(Res.Policy.make ~timeout_ms:50. ()) ()
        in
        let clock = Res.Control.clock ctl in
        match
          Res.Control.guard ctl ~source:"src" (fun () ->
              Res.Clock.advance clock 80.;
              "slow")
        with
        | _ -> Alcotest.fail "expected a timeout"
        | exception Res.Control.Error { code; _ } ->
          check_string "code" "RESX0001" (Res.Control.code_name code);
          check_int "timeouts" 1 (counter instr Instr.K.resil_timeouts));
    case "breaker trips under repeated failures and rejects" (fun () ->
        let ctl, f, instr =
          setup
            ~policy:
              (Res.Policy.make
                 ~breaker:
                   { Res.Breaker.failure_threshold = 2; cooldown_ms = 1000. }
                 ())
            ()
        in
        Res.Faults.set_fail_every f (Some 1);
        let attempt () =
          match Res.Control.guard ctl ~source:"src" (consult f) with
          | _ -> None
          | exception e -> Some e
        in
        check_bool "failure 1" true (attempt () <> None);
        check_bool "failure 2" true (attempt () <> None);
        check_int "tripped" 1 (counter instr Instr.K.resil_trips);
        (match attempt () with
        | Some (Res.Control.Error { code; _ }) ->
          check_string "code" "RESX0002" (Res.Control.code_name code)
        | _ -> Alcotest.fail "expected an open-circuit rejection");
        check_int "rejected" 1 (counter instr Instr.K.resil_rejected);
        (* after the cooldown the half-open probe may go through and
           close the circuit again *)
        Res.Faults.set_fail_every f None;
        Res.Clock.advance (Res.Control.clock ctl) 1500.;
        check_string "probe recovers" "ok"
          (Res.Control.guard ctl ~source:"src" (consult f));
        check_bool "closed" true
          (Res.Control.breaker_state ctl ~source:"src"
          = Some Res.Breaker.Closed));
    case "check_strict rejects without consuming the probe" (fun () ->
        let ctl, _, _ =
          setup ~policy:(Res.Policy.make ~breaker:Res.Breaker.default_config ())
            ()
        in
        Res.Control.trip ctl ~source:"src";
        (match Res.Control.check_strict ctl ~source:"src" with
        | () -> Alcotest.fail "expected strict rejection"
        | exception Res.Control.Error { code; _ } ->
          check_string "code" "RESX0002" (Res.Control.code_name code));
        check_bool "still open" true
          (Res.Control.breaker_state ctl ~source:"src" = Some Res.Breaker.Open));
  ]

(* End-to-end request deadlines: the ambient budget installed by the
   server pool, enforced at every guarded source call. Virtual-clock
   driven, so every expiry here is deterministic. *)
let deadline_tests =
  let setup ?policy () =
    let instr = fresh_instr () in
    let ctl = Res.Control.create ~instr () in
    let f = Res.Faults.create ~source:"src" () in
    Res.Control.attach ctl f;
    (match policy with
    | Some p -> Res.Control.set_policy ctl ~source:"src" p
    | None -> ());
    (ctl, f, instr)
  in
  [
    case "budget drains on the virtual clock" (fun () ->
        let clock = Res.Clock.create () in
        let d = Res.Deadline.start ~clock ~budget_ms:100. () in
        check_bool "fresh" false (Res.Deadline.expired d);
        Res.Clock.advance clock 60.;
        check_bool "remaining in (30,45)" true
          (let r = Res.Deadline.remaining_ms d in
           r > 30. && r <= 40.);
        Res.Clock.advance clock 50.;
        check_bool "expired" true (Res.Deadline.expired d);
        check_bool "remaining clamps at zero" true
          (Res.Deadline.remaining_ms d = 0.));
    case "with_deadline installs, restores and nests" (fun () ->
        check_bool "ambient starts empty" true (Res.Deadline.current () = None);
        let d = Res.Deadline.start ~budget_ms:1000. () in
        Res.Deadline.with_deadline d (fun () ->
            check_bool "installed" true (Res.Deadline.current () = Some d);
            let inner = Res.Deadline.start ~budget_ms:5. () in
            Res.Deadline.with_deadline inner (fun () ->
                check_bool "inner shadows" true
                  (Res.Deadline.current () = Some inner));
            check_bool "outer restored" true
              (Res.Deadline.current () = Some d);
            Res.Deadline.exempt (fun () ->
                check_bool "exempt clears" true
                  (Res.Deadline.current () = None));
            check_bool "restored after exempt" true
              (Res.Deadline.current () = Some d));
        check_bool "ambient empty again" true (Res.Deadline.current () = None));
    case "guard fails fast on an exhausted budget" (fun () ->
        let ctl, _, instr = setup () in
        let clock = Res.Control.clock ctl in
        let d = Res.Deadline.start ~clock ~budget_ms:20. () in
        Res.Clock.advance clock 30.;
        let ran = ref false in
        (match
           Res.Deadline.with_deadline d (fun () ->
               Res.Control.guard ctl ~source:"src" (fun () -> ran := true))
         with
        | _ -> Alcotest.fail "expected deadline failure"
        | exception Res.Control.Error { code; source; _ } ->
          check_string "code" "RESX0005" (Res.Control.code_name code);
          check_string "source" "src" source);
        check_bool "work never started" false !ran;
        check_int "counted" 1 (counter instr Instr.K.overload_expired));
    case "remaining budget caps a slow call below the policy timeout"
      (fun () ->
        (* policy timeout 500 ms, but only 50 ms of budget remains: the
           call's virtual 80 ms must fail the request even though the
           per-call policy alone would have allowed it *)
        let ctl, _, _ =
          setup ~policy:(Res.Policy.make ~timeout_ms:500. ()) ()
        in
        let clock = Res.Control.clock ctl in
        let d = Res.Deadline.start ~clock ~budget_ms:50. () in
        match
          Res.Deadline.with_deadline d (fun () ->
              Res.Control.guard ctl ~source:"src" (fun () ->
                  Res.Clock.advance clock 80.;
                  "slow"))
        with
        | _ -> Alcotest.fail "expected deadline failure"
        | exception Res.Control.Error { code; _ } ->
          check_string "code" "RESX0005" (Res.Control.code_name code));
    case "deadline cuts a retry loop short" (fun () ->
        (* every attempt faults; with 3 retries allowed the policy alone
           would exhaust as RESX0003, but the budget dies during backoff
           first *)
        let ctl, f, instr =
          setup
            ~policy:(Res.Policy.make ~max_retries:3 ~backoff_ms:40. ())
            ()
        in
        Res.Faults.set_fail_every f (Some 1);
        let d =
          Res.Deadline.start ~clock:(Res.Control.clock ctl) ~budget_ms:60. ()
        in
        let consult () =
          match (Res.Faults.on_call f Res.Faults.Statement).v_fault with
          | Some fl -> failwith fl.Res.Faults.f_message
          | None -> "ok"
        in
        (match
           Res.Deadline.with_deadline d (fun () ->
               Res.Control.guard ctl ~source:"src" consult)
         with
        | _ -> Alcotest.fail "expected deadline failure"
        | exception Res.Control.Error { code; _ } ->
          check_string "code" "RESX0005" (Res.Control.code_name code));
        check_bool "fewer retries than the policy allows" true
          (counter instr Instr.K.resil_retries < 3));
    case "exempt shields XA-style work from an expired budget" (fun () ->
        let ctl, _, _ = setup () in
        let clock = Res.Control.clock ctl in
        let d = Res.Deadline.start ~clock ~budget_ms:10. () in
        Res.Clock.advance clock 50.;
        let v =
          Res.Deadline.with_deadline d (fun () ->
              Res.Deadline.exempt (fun () ->
                  Res.Control.guard ctl ~source:"src" (fun () -> "committed")))
        in
        check_string "ran to completion" "committed" v);
    case "brownout transitions bump counters once per edge" (fun () ->
        let instr = fresh_instr () in
        let ctl = Res.Control.create ~instr () in
        check_bool "starts clear" false (Res.Control.in_brownout ctl);
        Res.Control.set_brownout ctl true;
        Res.Control.set_brownout ctl true;
        check_bool "in brownout" true (Res.Control.in_brownout ctl);
        Res.Control.set_brownout ctl false;
        Res.Control.set_brownout ctl false;
        check_int "entered once" 1
          (counter instr Instr.K.overload_brownout_entered);
        check_int "exited once" 1
          (counter instr Instr.K.overload_brownout_exited));
  ]

let dataspace_tests =
  [
    case "transient db fault on a read is retried to success" (fun () ->
        (* a heavy plan whose db1 schedule faults the very first call *)
        let seed =
          let faults_first s =
            List.mem 1
              (Res.Plan.schedule_for
                 (Res.Plan.make ~seed:s ~profile:Res.Plan.Heavy ())
                 ~source:"db1")
                .Res.Plan.s_transients
          in
          let rec find s = if faults_first s then s else find (s + 1) in
          find 1
        in
        let instr = fresh_instr () in
        let ctl =
          Res.Control.create
            ~plan:(Res.Plan.make ~seed ~profile:Res.Plan.Heavy ())
            ~instr ()
        in
        Res.Control.set_policy ctl ~source:"db1"
          (Res.Policy.make ~max_retries:3 ());
        Res.Control.set_policy ctl ~source:"db2"
          (Res.Policy.make ~max_retries:3 ());
        Res.Control.set_policy ctl ~source:"CreditRatingService"
          (Res.Policy.make ~max_retries:3 ());
        let env = FC.make ~customers:2 ~instr ~resilience:ctl () in
        let dg = FC.get_profile_by_id env "007" in
        check_bool "profile read" true (Sdo.roots dg <> []);
        check_bool "retried" true (counter instr Instr.K.resil_retries > 0);
        check_bool "injected" true (counter instr Instr.K.resil_injected > 0));
    case "hard db fault without degradation surfaces err:RESX0004" (fun () ->
        let env = FC.make ~customers:2 () in
        Res.Faults.set_schedule
          (R.Database.faults env.FC.db1)
          (sched ~windows:[ { Res.Plan.w_from = 0.; w_until = 1e9 } ] "db1");
        match FC.get_profile_by_id env "007" with
        | _ -> Alcotest.fail "expected the read to fail"
        | exception Item.Error { code; _ } ->
          check_string "code" "RESX0004" code.Qname.local);
    case "open ws breaker degrades getProfile and blocks submit" (fun () ->
        let instr = fresh_instr () in
        let ctl = Res.Control.create ~instr () in
        Res.Control.set_policy ctl ~source:"CreditRatingService"
          (Res.Policy.make ~breaker:Res.Breaker.default_config ());
        Res.Control.set_degradable ctl ~source:"CreditRatingService";
        let env = FC.make ~customers:2 ~instr ~resilience:ctl () in
        Res.Control.trip ctl ~source:"CreditRatingService";
        let dg = FC.get_profile_by_id env "007" in
        (* the profile is well-formed, just missing the rating *)
        (match Sdo.roots dg with
        | [ profile ] ->
          let child name =
            List.exists
              (fun c ->
                match Node.name c with
                | Some q -> q.Qname.local = name
                | None -> false)
              (Node.children profile)
          in
          check_bool "cards kept" true (child "CreditCards");
          check_bool "rating dropped" false (child "CreditRating")
        | _ -> Alcotest.fail "expected one profile root");
        check_bool "degraded counted" true
          (counter instr Instr.K.resil_degraded > 0);
        (match Res.Control.degradations ctl with
        | d :: _ ->
          check_string "source" "CreditRatingService" d.Res.Control.dg_source;
          check_string "code" "RESX0002" d.Res.Control.dg_code
        | [] -> Alcotest.fail "expected a degradation report");
        (* resil:degradations() surfaces the report to queries *)
        let report =
          Xqse.Session.eval_to_string
            (Aldsp.Dataspace.session env.FC.ds)
            "resil:degradations()"
        in
        check_bool "report names source" true
          (contains report "CreditRatingService");
        check_bool "report names code" true (contains report "RESX0002");
        (* …while the same open breaker makes submit fail strictly *)
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Blocked";
        (match Aldsp.Dataspace.submit env.FC.ds env.FC.svc dg with
        | _ -> Alcotest.fail "expected a strict rejection"
        | exception Item.Error { code; _ } ->
          check_string "code" "RESX0002" code.Qname.local);
        match R.Table.find_pk env.FC.customer [ R.Value.Text "007" ] with
        | Some row ->
          check_string "db untouched" "Carrey"
            (R.Value.to_string (R.Table.get row env.FC.customer "LAST_NAME"))
        | None -> Alcotest.fail "customer 007 missing");
  ]

let uc4_tests =
  [
    case "UC4: transient backup fault is retried to success" (fun () ->
        let instr = fresh_instr () in
        let ctl = Res.Control.create ~instr () in
        Res.Control.set_policy ctl ~source:"backup"
          (Res.Policy.make ~max_retries:3 ());
        let env = FE.make ~employees:4 ~instr ~resilience:ctl () in
        FE.load_all_use_cases env;
        Res.Faults.inject_next (R.Database.faults env.FE.backup) "blip";
        let keys =
          Aldsp.Dataspace.call env.FE.ds (uc "create")
            [ [ Item.Node (employee_xml 50 "Nora Park") ] ]
        in
        check_int "one key" 1 (List.length keys);
        check_bool "primary" true
          (R.Table.find_pk env.FE.employee [ R.Value.Int 50 ] <> None);
        check_bool "backup" true
          (R.Table.find_pk env.FE.emp2 [ R.Value.Int 50 ] <> None);
        check_bool "retried" true (counter instr Instr.K.resil_retries > 0));
    case "UC4: hard backup fault is caught with the stable code" (fun () ->
        let ctl = Res.Control.create () in
        Res.Control.set_policy ctl ~source:"backup"
          (Res.Policy.make ~max_retries:2 ());
        let env = FE.make ~employees:4 ~resilience:ctl () in
        FE.load_all_use_cases env;
        R.Database.set_fail_statements_after env.FE.backup (Some 0);
        Res.Faults.set_fail_every (R.Database.faults env.FE.backup) (Some 1);
        match
          Aldsp.Dataspace.call env.FE.ds (uc "create")
            [ [ Item.Node (employee_xml 60 "Faily McFail") ] ]
        with
        | _ -> Alcotest.fail "expected failure"
        | exception Item.Error { code; message; _ } ->
          check_string "code" "SECONDARY_CREATE_FAILURE" code.Qname.local;
          check_bool "stable code in catch" true (contains message "RESX0003");
          check_bool "backup untouched" true
            (R.Table.find_pk env.FE.emp2 [ R.Value.Int 60 ] = None));
  ]

let xa_tests =
  let mk name =
    let db = R.Database.create name in
    ignore
      (R.Database.add_table db
         {
           R.Table.tbl_name = "T";
           columns =
             [
               {
                 R.Table.col_name = "ID";
                 col_type = R.Value.T_int;
                 nullable = false;
               };
             ];
           primary_key = [ "ID" ];
           foreign_keys = [];
         });
    db
  in
  let prepares evs =
    List.filter
      (function R.Xa.Prepare_ok _ | R.Xa.Prepare_failed _ -> true | _ -> false)
      evs
  in
  let index p evs =
    let rec go i = function
      | [] -> None
      | e :: rest -> if p e then Some i else go (i + 1) rest
    in
    go 0 evs
  in
  [
    case "2 participants: full prepare round then commits" (fun () ->
        let a = mk "a" and b = mk "b" in
        let result, trace = R.Xa.run_traced [ a; b ] (fun () -> ()) in
        check_bool "committed" true (result = Ok ());
        check_int "both voted" 2 (List.length (prepares trace));
        check_bool "votes ok" true
          (List.for_all
             (function R.Xa.Prepare_ok _ -> true | _ -> false)
             (prepares trace));
        check_int "both committed" 2
          (List.length
             (List.filter
                (function R.Xa.Commit _ -> true | _ -> false)
                trace)));
    case "3 participants: every vote lands before the decision" (fun () ->
        let a = mk "a" and b = mk "b" and c = mk "c" in
        R.Database.set_fail_on_prepare b true;
        let result, trace = R.Xa.run_traced [ a; b; c ] (fun () -> ()) in
        check_bool "aborted" true (match result with Error _ -> true | Ok _ -> false);
        (* ALL three participants vote, even after b's failure *)
        check_int "three votes" 3 (List.length (prepares trace));
        check_bool "b voted no" true
          (List.exists
             (function R.Xa.Prepare_failed "b" -> true | _ -> false)
             trace);
        check_bool "c still voted" true
          (List.exists
             (function R.Xa.Prepare_ok "c" -> true | _ -> false)
             trace);
        (* …and only then does the coordinator decide *)
        let last_vote =
          index
            (function R.Xa.Prepare_ok "c" -> true | _ -> false)
            trace
        and first_rollback =
          index (function R.Xa.Rollback _ -> true | _ -> false) trace
        in
        (match (last_vote, first_rollback) with
        | Some v, Some r -> check_bool "votes before rollback" true (v < r)
        | _ -> Alcotest.fail "missing events");
        check_int "all rolled back" 3
          (List.length
             (List.filter
                (function R.Xa.Rollback _ -> true | _ -> false)
                trace));
        check_bool "nobody committed" true
          (not (List.exists (function R.Xa.Commit _ -> true | _ -> false) trace)));
    case "injected commit fault is retried to completion" (fun () ->
        let a = mk "a" and b = mk "b" in
        Res.Faults.set_schedule
          (R.Database.faults b)
          (sched ~commits:[ 1 ] "b");
        let result, trace = R.Xa.run_traced [ a; b ] (fun () -> ()) in
        check_bool "committed" true (result = Ok ());
        check_int "both commit despite the fault" 2
          (List.length
             (List.filter
                (function R.Xa.Commit _ -> true | _ -> false)
                trace)));
  ]

let webservice_tests =
  let mk_ws () =
    let ws = Webservice.create ~name:"Echo" ~namespace:"urn:echo" in
    Webservice.add_operation ws
      {
        Webservice.op_name = "echo";
        op_input = Qname.make ~uri:"urn:echo" "echoRequest";
        op_output = Qname.make ~uri:"urn:echo" "echoResponse";
        op_doc = "echoes its input";
        op_handler =
          (fun req ->
            Node.element
              (Qname.make ~uri:"urn:echo" "echoResponse")
              [ Node.text (Node.string_value req) ]);
      };
    Webservice.set_latency ws 5.;
    ws
  in
  let request s =
    Node.element (Qname.make ~uri:"urn:echo" "echoRequest") [ Node.text s ]
  in
  let faults f = match f () with
    | _ -> false
    | exception Webservice.Fault _ -> true
  in
  [
    case "unknown operation counts as a call, accrues no latency" (fun () ->
        let ws = mk_ws () in
        check_bool "faults" true (faults (fun () -> Webservice.invoke ws "nope" (request "x")));
        check_int "counted" 1 (Webservice.call_count ws);
        check_bool "no latency" true (Webservice.total_latency ws = 0.));
    case "validation fault counts as a call, accrues no latency" (fun () ->
        let ws = mk_ws () in
        check_bool "faults" true
          (faults (fun () ->
               Webservice.invoke ws "echo" (Node.element (Qname.local "bad") [])));
        check_int "counted" 1 (Webservice.call_count ws);
        check_bool "no latency" true (Webservice.total_latency ws = 0.));
    case "injected fault counts as a call, accrues no latency" (fun () ->
        let ws = mk_ws () in
        Webservice.inject_fault_next ws ~message:"boom";
        check_bool "faults" true (faults (fun () -> Webservice.invoke ws "echo" (request "x")));
        check_int "counted" 1 (Webservice.call_count ws);
        check_bool "no latency" true (Webservice.total_latency ws = 0.));
    case "successful invoke accrues latency on clock and total" (fun () ->
        let ws = mk_ws () in
        ignore (Webservice.invoke ws "echo" (request "x"));
        ignore (Webservice.invoke ws "echo" (request "y"));
        check_int "counted" 2 (Webservice.call_count ws);
        check_bool "latency" true (Webservice.total_latency ws = 10.);
        check_bool "virtual clock" true
          (Res.Clock.now (Res.Faults.clock (Webservice.faults ws)) = 10.));
  ]

let chaos_tests =
  [
    case "50+ seeded schedules: no partial commits, full replay" (fun () ->
        let exercised = ref 0 in
        for seed = 1 to 55 do
          let r = Fixtures.Chaos.run ~seed ~profile:Res.Plan.Heavy () in
          (match r.Fixtures.Chaos.r_violations with
          | [] -> ()
          | v :: _ -> Alcotest.failf "atomicity violation: %s" v);
          if r.Fixtures.Chaos.r_injected > 0 then incr exercised;
          check_bool "rounds ran" true
            (r.Fixtures.Chaos.r_committed + r.Fixtures.Chaos.r_failed
             + r.Fixtures.Chaos.r_read_failures
            > 0)
        done;
        (* the plans actually injected faults in almost every run *)
        check_bool "chaos exercised" true (!exercised > 45));
    case "a chaos run is a pure function of its seed" (fun () ->
        for seed = 1 to 5 do
          let r1 = Fixtures.Chaos.run ~seed ~profile:Res.Plan.Heavy () in
          let r2 = Fixtures.Chaos.run ~seed ~profile:Res.Plan.Heavy () in
          check_bool "replay" true (r1 = r2)
        done);
    case "calm profile commits every round" (fun () ->
        let r = Fixtures.Chaos.run ~seed:3 ~profile:Res.Plan.Calm () in
        check_bool "no violations" true (r.Fixtures.Chaos.r_violations = []));
  ]

let suites =
  [
    ("resilience clock+rng", clock_tests);
    ("resilience plan", plan_tests);
    ("resilience faults", fault_tests);
    ("resilience breaker", breaker_tests);
    ("resilience guard", guard_tests);
    ("resilience deadline", deadline_tests);
    ("resilience dataspace", dataspace_tests);
    ("resilience uc4", uc4_tests);
    ("resilience xa", xa_tests);
    ("resilience webservice", webservice_tests);
    ("resilience chaos", chaos_tests);
  ]
