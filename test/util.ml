(* Shared helpers for the test suites. *)

open Core

let xq ?context_item ?(vars = []) src =
  let engine = Xquery.Engine.create () in
  let opts = { Xquery.Engine.default_run_opts with context_item; vars } in
  Xdm.Xml_serialize.seq_to_string
    (Xquery.Engine.eval_string ~opts engine src)

let xq_noopt src =
  let engine = Xquery.Engine.create ~optimize:false () in
  Xdm.Xml_serialize.seq_to_string (Xquery.Engine.eval_string engine src)

(* forced-materializing mode: every cursor degenerates to eager
   evaluation — the differential suites compare it against the default
   streaming mode *)
let xq_nostream src =
  let engine = Xquery.Engine.create ~streaming:false () in
  Xdm.Xml_serialize.seq_to_string (Xquery.Engine.eval_string engine src)

let xq_noopt_nostream src =
  let engine = Xquery.Engine.create ~optimize:false ~streaming:false () in
  Xdm.Xml_serialize.seq_to_string (Xquery.Engine.eval_string engine src)

(* interpreted mode: closure compilation and the plan cache disabled —
   every query walks the AST directly; the differential suites compare
   it against the default compiled mode *)
let xq_noplans src =
  let engine = Xquery.Engine.create () in
  Xquery.Engine.set_plans engine false;
  Xdm.Xml_serialize.seq_to_string (Xquery.Engine.eval_string engine src)

let xqse ?(vars = []) src =
  let session = Xqse.Session.create () in
  let opts = { Xqse.Session.default_exec_opts with vars } in
  Xqse.Session.eval_to_string ~opts session src

(* a test case asserting the serialized result of a query *)
let q name expected src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) src expected (xq src))

(* the same, evaluated through the XQSE session *)
let s name expected src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) src expected (xqse src))

(* expect a dynamic/static error whose code has this local name *)
let q_err name code src =
  Alcotest.test_case name `Quick (fun () ->
      match xq src with
      | result ->
        Alcotest.failf "expected error %s, got result %s" code result
      | exception Xdm.Item.Error { code = actual; _ } ->
        Alcotest.(check string) src code actual.Xdm.Qname.local)

let s_err name code src =
  Alcotest.test_case name `Quick (fun () ->
      match xqse src with
      | result ->
        Alcotest.failf "expected error %s, got result %s" code result
      | exception Xdm.Item.Error { code = actual; _ } ->
        Alcotest.(check string) src code actual.Xdm.Qname.local)

(* expect a syntax error *)
let q_syntax name src =
  Alcotest.test_case name `Quick (fun () ->
      match xq src with
      | result -> Alcotest.failf "expected a syntax error, got %s" result
      | exception (Xquery.Parser.Syntax_error _ | Xquery.Lexer.Lex_error _) ->
        ())

let s_syntax name src =
  Alcotest.test_case name `Quick (fun () ->
      match xqse src with
      | result -> Alcotest.failf "expected a syntax error, got %s" result
      | exception (Xquery.Parser.Syntax_error _ | Xquery.Lexer.Lex_error _) ->
        ())

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let case name f = Alcotest.test_case name `Quick f

let prop name ?(count = 200) arbitrary f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arbitrary f)
