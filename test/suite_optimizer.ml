(* The rewrite optimizer: each pass, the stats counters, and the
   semantic-preservation property (optimized and unoptimized evaluation
   agree). *)

open Util
open Core

let parse src = Xquery.Parser.parse_expression (Xquery.Context.default_static ()) src

let stats src =
  let _, st = Xquery.Optimizer.optimize_with_stats (parse src) in
  st

let pass_tests =
  [
    case "constant folding of arithmetic" (fun () ->
        check_bool "folded" true ((stats "1 + 2 * 3").Xquery.Optimizer.folded > 0);
        check_bool "result" true
          (Xquery.Optimizer.optimize (parse "1 + 2 * 3")
          = Xquery.Ast.Literal (Xdm.Atomic.Integer 7)));
    case "constant folding of comparisons" (fun () ->
        check_bool "folded" true
          (Xquery.Optimizer.optimize (parse "1 lt 2")
          = Xquery.Ast.Literal (Xdm.Atomic.Boolean true)));
    case "if on constant condition selects branch" (fun () ->
        check_bool "then" true
          (Xquery.Optimizer.optimize (parse "if (1 lt 2) then 'a' else 'b'")
          = Xquery.Ast.Literal (Xdm.Atomic.String "a")));
    case "division by zero is not folded away" (fun () ->
        (* folding must not turn a dynamic error into a value *)
        match Xquery.Optimizer.optimize (parse "1 idiv 0") with
        | Xquery.Ast.Literal _ -> Alcotest.fail "folded an erroring expression"
        | _ -> ());
    case "let inlining of literals" (fun () ->
        check_bool "inlined" true
          ((stats "let $x := 1 return $x + $x").Xquery.Optimizer.inlined > 0));
    case "let alias inlining" (fun () ->
        check_bool "inlined" true
          ((stats "for $a in (1,2) let $b := $a return $b * 2").Xquery.Optimizer.inlined
          > 0));
    case "computed lets are kept" (fun () ->
        check_int "inlined" 0
          (stats "let $x := <a/> return ($x, $x)").Xquery.Optimizer.inlined);
    case "where-to-predicate pushdown" (fun () ->
        check_bool "pushed" true
          ((stats "for $x in (1 to 10) where $x mod 2 eq 0 return $x").Xquery.Optimizer.pushed
          > 0));
    case "pushdown skipped when where uses two variables" (fun () ->
        check_int "pushed" 0
          (stats
             "for $x in (1 to 3) for $y in (1 to 3) where $x + $y eq 4 return 1")
            .Xquery.Optimizer.pushed);
    case "equi-join detection" (fun () ->
        check_bool "joins" true
          ((stats
              "for $a in (<r><k>1</k></r>, <r><k>2</k></r>)
               for $b in (<s><k>2</k></s>)
               where $a/k eq $b/k
               return ($a, $b)")
             .Xquery.Optimizer.joins
          > 0));
    case "join not detected for non-equality" (fun () ->
        check_int "joins" 0
          (stats
             "for $a in (<r><k>1</k></r>)
              for $b in (<s><k>2</k></s>)
              where $a/k lt $b/k
              return 1")
            .Xquery.Optimizer.joins);
    case "join not detected when inner source depends on outer" (fun () ->
        check_int "joins" 0
          (stats
             "for $a in (<r><k>1</k></r>)
              for $b in $a/k
              where $a/k eq $b
              return 1")
            .Xquery.Optimizer.joins);
  ]

(* Equivalence: a library of expressions covering every construct the
   optimizer rewrites, evaluated with and without optimization. *)
let equivalence_exprs =
  [
    "1 + 2 * 3 - 4 idiv 2";
    "let $x := 5 return $x * $x";
    "let $x := 'a' let $y := $x return concat($y, $x)";
    "for $i in 1 to 20 where $i mod 3 eq 0 return $i";
    "for $i in 1 to 10 where $i gt 2 and $i lt 8 return $i";
    "for $x in (1 to 5) let $y := $x return (if ($y lt 3) then 'lo' else 'hi')";
    "for $a in (<r><k>1</k><v>a</v></r>, <r><k>2</k><v>b</v></r>)
     for $b in (<s><k>2</k><w>B</w></s>, <s><k>1</k><w>A</w></s>)
     where $a/k eq $b/k
     order by $a/k
     return concat($a/v, $b/w)";
    "for $a in (<r><k>1</k></r>, <r><k>1</k></r>)
     for $b in (<s><k>1</k></s>, <s><k>1</k></s>)
     where $a/k eq $b/k
     return 'x'";
    "count(for $x in 1 to 50 where true() return $x)";
    "for $x in (3, 1, 2) order by $x descending return $x * 10";
    "some $x in (1 to 10) satisfies $x * $x eq 49";
    "<out>{for $i in 1 to 3 where $i ne 2 return <i>{$i}</i>}</out>";
    "for $x in (1 to 5) where $x eq 3 return $x + (let $pad := 0 return $pad)";
  ]

let equivalence_tests =
  List.map
    (fun src ->
      case ("optimized = unoptimized: " ^ String.sub src 0 (min 40 (String.length src)))
        (fun () -> check_string src (xq_noopt src) (xq src)))
    equivalence_exprs

let prop_tests =
  [
    (* randomized FLWOR queries over a small data space *)
    prop "random where/order FLWORs agree with and without optimization"
      ~count:60
      QCheck.(triple (int_range 1 10) (int_range 0 3) bool)
      (fun (n, m, desc) ->
        let src =
          Printf.sprintf
            "for $x in 1 to %d let $y := $x mod 4 where $y ge %d order by $x %s return $x * 2 + $y"
            n m
            (if desc then "descending" else "")
        in
        xq src = xq_noopt src);
    prop "random join queries agree" ~count:40
      QCheck.(pair (int_range 1 6) (int_range 1 6))
      (fun (n, m) ->
        let seq k =
          String.concat ", "
            (List.init k (fun i -> Printf.sprintf "<r><k>%d</k></r>" (i mod 3)))
        in
        let src =
          Printf.sprintf
            "for $a in (%s) for $b in (%s) where $a/k eq $b/k return string($a/k)"
            (seq n) (seq m)
        in
        xq src = xq_noopt src);
  ]

(* Soundness regressions: capture-avoiding substitution, join detection
   across shadowing [let] clauses, and constant-folding edge cases. *)

let agree name src = case name (fun () -> check_string src (xq_noopt src) (xq src))

let trace_run ~optimize src =
  let engine = Xquery.Engine.create ~optimize () in
  let msgs = ref [] in
  let result =
    Xdm.Xml_serialize.seq_to_string
      (Xquery.Engine.eval_string
         ~opts:
           {
             Xquery.Engine.default_run_opts with
             trace = Some (fun m -> msgs := m :: !msgs);
           }
         engine src)
  in
  (result, List.rev !msgs)

let soundness_tests =
  [
    case "let inlining is capture-avoiding (issue repro)" (fun () ->
        let src =
          "let $x := 99 return (let $y := $x for $x in (1,2) return $y)"
        in
        check_string "optimized result" "99 99" (xq src);
        check_string "agrees with unoptimized" (xq_noopt src) (xq src));
    agree "alias inlining avoids capture under quantifiers"
      "for $x in (7,8) let $y := $x return some $x in (1 to 3) satisfies $x eq $y";
    agree "alias inlining avoids capture by positional variables"
      "for $x in (5,6) let $y := $x return (for $i at $x in ('a','b') return $y)";
    agree "alias inlining avoids capture by a later let in the same FLWOR"
      "for $x in (3,4) let $y := $x let $x := 0 return $y";
    case "join skipped when a let shadows the probe key variable" (fun () ->
        let src =
          "for $a in (<r><k>1</k></r>, <r><k>2</k></r>)
           for $b in (<s><k>2</k></s>, <s><k>3</k></s>)
           let $a := <r><k>3</k></r>
           where $a/k eq $b/k
           return string($b/k)"
        in
        check_int "joins" 0 (stats src).Xquery.Optimizer.joins;
        check_string src (xq_noopt src) (xq src));
    case "join skipped when a let shadows the build key variable" (fun () ->
        let src =
          "for $a in (<r><k>1</k></r>, <r><k>2</k></r>)
           for $b in (<s><k>9</k></s>)
           let $b := <s><k>2</k></s>
           where $a/k eq $b/k
           return string($a/k)"
        in
        check_int "joins" 0 (stats src).Xquery.Optimizer.joins;
        check_string src (xq_noopt src) (xq src));
    case "value comparison on incomparable literals is not folded" (fun () ->
        let src = "1 eq 'x'" in
        check_int "folded" 0 (stats src).Xquery.Optimizer.folded;
        (match Xquery.Optimizer.optimize (parse src) with
        | Xquery.Ast.Literal _ -> Alcotest.fail "folded an erroring comparison"
        | _ -> ());
        (* both modes must still raise the dynamic type error *)
        List.iter
          (fun run ->
            match run src with
            | (_ : string) -> Alcotest.fail "expected XPTY0004"
            | exception Xdm.Item.Error { code; _ } ->
              check_string "code" "XPTY0004" code.Xdm.Qname.local)
          [ xq; xq_noopt ])
    ;
    case "unary minus on a non-numeric literal is not folded" (fun () ->
        let src = "-'a'" in
        check_int "folded" 0 (stats src).Xquery.Optimizer.folded;
        match Xquery.Optimizer.optimize (parse src) with
        | Xquery.Ast.Literal _ -> Alcotest.fail "folded an erroring negation"
        | _ -> ());
    case "and-fold keeps short-circuit trace behaviour" (fun () ->
        (* the second operand is never evaluated in either mode *)
        let src = "(1 eq 2) and trace(true(), 'boom')" in
        let r_opt, t_opt = trace_run ~optimize:true src in
        let r_no, t_no = trace_run ~optimize:false src in
        check_string "result" r_no r_opt;
        check_int "no trace either way" 0 (List.length t_opt + List.length t_no));
    case "and-fold keeps the traced second operand when it must run" (fun () ->
        let src = "(1 eq 1) and trace(true(), 'side')" in
        let r_opt, t_opt = trace_run ~optimize:true src in
        let r_no, t_no = trace_run ~optimize:false src in
        check_string "result" r_no r_opt;
        check_int "trace fires once optimized" (List.length t_no)
          (List.length t_opt));
    case "and-fold preserves the EBV of a non-boolean operand" (fun () ->
        let src = "(1 eq 1) and 1" in
        check_string "true and 1 is true" (xq_noopt src) (xq src));
    case "or-fold preserves the EBV of a non-boolean operand" (fun () ->
        let src = "(1 eq 2) or 'nonempty'" in
        check_string "false or string is true" (xq_noopt src) (xq src));
  ]

(* The purity-gated rewrites: cost-based inlining of computed lets and
   the focus-shift/boolean-wrap pushdown paths. Each case checks both
   that the rewrite fires (or refuses) via the stats counters and that
   the result agrees with unoptimized evaluation. *)
let purity_gated_tests =
  [
    case "bare numeric where pushes as an EBV test" (fun () ->
        (* regression: pushing [$x] unwrapped made it a positional
           predicate, turning 2 3 into the empty sequence *)
        let src = "for $x in (2,3) where $x return $x" in
        check_bool "pushed" true ((stats src).Xquery.Optimizer.pushed > 0);
        check_string "result" "2 3" (xq src);
        check_string "agrees" (xq_noopt src) (xq src));
    case "fallible condition does not jump an unpushable where" (fun () ->
        (* regression: [1 idiv $x] pushed past the kept two-variable
           where runs on tuples the kept where would have filtered,
           raising FOAR0001 on a program whose result is empty *)
        let src =
          "for $y in (3,4) for $x in (0,1) where ($y + $x eq 9) and (1 idiv \
           $x ge 0) return $x"
        in
        check_int "pushed" 0 (stats src).Xquery.Optimizer.pushed;
        check_string "result" "" (xq src);
        check_string "agrees" (xq_noopt src) (xq src));
    case "pushable condition does not jump a fallible kept where" (fun () ->
        (* regression, dual of the previous case: [empty($x)] is itself
           pure, total and boolean-valued, but pushing it past the kept
           fallible [1 idiv $y ge 1] filters the $y=0 tuple out before
           the idiv runs, turning FOAR0001 into an empty result *)
        (* the conjunction splits into two where clauses in
           normalize_wheres before pushdown sees them *)
        let src =
          "for $y in (0,1) for $x in (1) where (1 idiv $y ge 1) and \
           empty($x) return $x"
        in
        check_int "pushed" 0 (stats src).Xquery.Optimizer.pushed;
        check_string "agrees (both raise)" "FOAR0001"
          (match xq src with
          | _ -> "no error"
          | exception Xdm.Item.Error { code; _ } -> code.Xdm.Qname.local));
    case "pushable condition still jumps a total kept where" (fun () ->
        (* partial pushdown survives when the jumped where is itself
           pure, total and boolean-valued — skipping its evaluation on
           rejected tuples is unobservable *)
        let src =
          "for $y in (1,2) for $x in (3,4) where exists(($y)) and \
           exists($x) return $x"
        in
        check_bool "pushed" true ((stats src).Xquery.Optimizer.pushed > 0);
        check_string "result" "3 4 3 4" (xq src);
        check_string "agrees" (xq_noopt src) (xq src));
    case "head inline into a call requires total later arguments" (fun () ->
        (* the inlined value runs first only because eval.ml happens to
           evaluate arguments left-to-right; refuse the inline unless
           the later arguments are total, so nothing depends on that *)
        let fallible_rest =
          "let $x := xs:integer(\"3\") return concat($x, 1 idiv 0)"
        in
        check_int "kept" 0 (stats fallible_rest).Xquery.Optimizer.inlined_pure;
        check_string "agrees (both raise)" "FOAR0001"
          (match xq fallible_rest with
          | _ -> "no error"
          | exception Xdm.Item.Error { code; _ } -> code.Xdm.Qname.local);
        let total_rest =
          "let $x := xs:integer(\"3\") return concat($x, \"b\")"
        in
        check_int "inlined" 1 (stats total_rest).Xquery.Optimizer.inlined_pure;
        check_string "result" "3b" (xq total_rest));
    case "focus-shifted predicate pushes through a fresh let" (fun () ->
        let src = "for $x in (1,2,3) where count((1,2)[. le $x]) eq 2 return $x" in
        check_int "pushed_shifted" 1 (stats src).Xquery.Optimizer.pushed_shifted;
        check_string "result" "2 3" (xq src);
        check_string "agrees" (xq_noopt src) (xq src));
    case "single-use computed let inlines in head position" (fun () ->
        let src = "let $x := count((1 to 5)) return $x + 1" in
        check_int "inlined_pure" 1 (stats src).Xquery.Optimizer.inlined_pure;
        check_string "result" "6" (xq src));
    case "unused total let is dropped" (fun () ->
        let src = "let $d := current-date() return 7" in
        check_int "inlined_pure" 1 (stats src).Xquery.Optimizer.inlined_pure;
        check_string "result" "7" (xq src));
    case "unused fallible let is kept" (fun () ->
        (* dropping it would swallow its potential dynamic error *)
        let src = "let $x := 1 idiv 0 return 7" in
        check_int "inlined_pure" 0 (stats src).Xquery.Optimizer.inlined_pure;
        check_string "agrees (both raise)" "FOAR0001"
          (match xq src with
          | _ -> "no error"
          | exception Xdm.Item.Error { code; _ } -> code.Xdm.Qname.local));
    case "size cap refuses a large value in non-head position" (fun () ->
        let big = "count((1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18))" in
        let non_head =
          Printf.sprintf "let $x := %s return xs:integer(\"3\") + $x" big
        in
        check_int "kept" 0 (stats non_head).Xquery.Optimizer.inlined_pure;
        check_string "agrees" (xq_noopt non_head) (xq non_head);
        (* the same value in head position inlines regardless of size:
           it is evaluated exactly once either way *)
        let head = Printf.sprintf "let $x := %s return $x + 1" big in
        check_int "head inlines" 1 (stats head).Xquery.Optimizer.inlined_pure;
        check_string "result" "19" (xq head));
    case "multi-use computed let is kept" (fun () ->
        (* inlining would evaluate the computation once per use *)
        let src = "let $x := count((1 to 5)) return $x + $x" in
        let st = stats src in
        check_int "inlined" 0 st.Xquery.Optimizer.inlined;
        check_int "inlined_pure" 0 st.Xquery.Optimizer.inlined_pure;
        check_string "result" "10" (xq src));
    case "constructing let is never inlined" (fun () ->
        (* node identity: a fresh element per use would change [$x | $x] *)
        let src = "let $x := <a/> for $i in (1,2) return count($x | $x)" in
        let st = stats src in
        check_int "inlined_pure" 0 st.Xquery.Optimizer.inlined_pure;
        check_string "result" "1 1" (xq src);
        check_string "agrees" (xq_noopt src) (xq src));
  ]

let suites =
  [
    ("optimizer.passes", pass_tests);
    ("optimizer.purity-gated", purity_gated_tests);
    ("optimizer.equivalence", equivalence_tests @ prop_tests);
    ("optimizer.soundness", soundness_tests);
  ]
