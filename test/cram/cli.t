The CLI evaluates expressions:

  $ xqse -e '1 + 2 * 3'
  7

  $ xqse -e '{ return value "Hello, World"; }'
  Hello, World

Programs arrive on stdin:

  $ echo 'for $i in 1 to 4 return $i * $i' | xqse -
  1 4 9 16

Full XQSE programs with declarations:

  $ xqse -e 'declare xqse function local:fact($n as xs:integer) as xs:integer {
  >   declare $acc := 1, $i := 1;
  >   while ($i le $n) { set $acc := $acc * $i; set $i := $i + 1; }
  >   return value $acc;
  > };
  > local:fact(6)'
  720

Library files load before the main program:

  $ cat > defs.xqse <<'XQ'
  > declare readonly procedure local:triple($x as xs:integer) as xs:integer {
  >   return value 3 * $x;
  > };
  > XQ
  $ xqse --lib defs.xqse -e 'local:triple(14)'
  42

The --ast flag parses and prints the program back:

  $ xqse --ast -e '{ declare $x := 1; set $x := $x + 1; return value $x; }'
  {
    declare $x := 1;
    set $x := ($x + 1);
    return value $x;
  }

--no-optimize runs the program exactly as written; both modes must agree
(this query once returned "1 2" optimized — a let-inlining capture bug):

  $ echo 'let $x := 99 return (let $y := $x for $x in (1,2) return $y)' | xqse -
  99 99

  $ echo 'let $x := 99 return (let $y := $x for $x in (1,2) return $y)' | xqse --no-optimize -
  99 99

--explain optimizes without executing and reports every rewrite:

  $ xqse --explain -e 'let $x := 1 return for $a in (1,2,3) where $a ge $x return $a * 2'
  for $a in ((1, 2, 3))[(. ge 1)] return ($a * 2)
  rewrite: inline_lets: $x := 1
  rewrite: pushdown_predicates: $a where ($a ge 1)
  rewrite: pass 1: folded=0 inlined=1 joins=0 pushed=1
  stats: folded=0 inlined=1 joins=0 pushed=1

  $ xqse --explain -e '1 + 2 * 3'
  7
  rewrite: fold_constants: (2 * 3) => 6
  rewrite: fold_constants: (1 + 6) => 7
  rewrite: pass 1: folded=2 inlined=0 joins=0 pushed=0
  stats: folded=2 inlined=0 joins=0 pushed=0

Dynamic errors report their code:

  $ xqse -e '1 div 0'
  xqse: dynamic error err:FOAR0001: division by zero
  [124]

Syntax errors report position:

  $ xqse -e 'for $x in'
  xqse: syntax error at 1:10: unexpected end of input
  [124]

fn:trace goes to stderr with --trace:

  $ xqse --trace -e 'trace(2 + 2, "sum")'
  trace: sum: 4
  4

The interactive session persists declarations:

  $ printf 'declare variable $k := 10;;;\n$k * $k;;\n' | xqse -i
  XQSE interactive session. End input with ';;'. Declarations persist.
  xqse> declared.
  xqse> 100
  xqse> 
