The CLI evaluates expressions:

  $ xqse -e '1 + 2 * 3'
  7

  $ xqse -e '{ return value "Hello, World"; }'
  Hello, World

Programs arrive on stdin:

  $ echo 'for $i in 1 to 4 return $i * $i' | xqse -
  1 4 9 16

Full XQSE programs with declarations:

  $ xqse -e 'declare xqse function local:fact($n as xs:integer) as xs:integer {
  >   declare $acc := 1, $i := 1;
  >   while ($i le $n) { set $acc := $acc * $i; set $i := $i + 1; }
  >   return value $acc;
  > };
  > local:fact(6)'
  720

Library files load before the main program:

  $ cat > defs.xqse <<'XQ'
  > declare readonly procedure local:triple($x as xs:integer) as xs:integer {
  >   return value 3 * $x;
  > };
  > XQ
  $ xqse --lib defs.xqse -e 'local:triple(14)'
  42

The --ast flag parses and prints the program back:

  $ xqse --ast -e '{ declare $x := 1; set $x := $x + 1; return value $x; }'
  {
    declare $x := 1;
    set $x := ($x + 1);
    return value $x;
  }

--no-optimize runs the program exactly as written; both modes must agree
(this query once returned "1 2" optimized — a let-inlining capture bug):

  $ echo 'let $x := 99 return (let $y := $x for $x in (1,2) return $y)' | xqse -
  99 99

  $ echo 'let $x := 99 return (let $y := $x for $x in (1,2) return $y)' | xqse --no-optimize -
  99 99

--explain optimizes without executing and reports every rewrite:

  $ xqse --explain -e 'let $x := 1 return for $a in (1,2,3) where $a ge $x return $a * 2'
  for $a in ((1, 2, 3))[(. ge 1)] return ($a * 2)
  rewrite: inline_lets: $x := 1
  rewrite: pushdown_predicates: $a where ($a ge 1)
  rewrite: pass 1: folded=0 inlined=1 inlined_pure=0 joins=0 pushed=1 pushed_shifted=0
  stats: folded=0 inlined=1 inlined_pure=0 joins=0 pushed=1 pushed_shifted=0

  $ xqse --explain -e '1 + 2 * 3'
  7
  rewrite: fold_constants: (2 * 3) => 6
  rewrite: fold_constants: (1 + 6) => 7
  rewrite: pass 1: folded=2 inlined=0 inlined_pure=0 joins=0 pushed=0 pushed_shifted=0
  stats: folded=2 inlined=0 inlined_pure=0 joins=0 pushed=0 pushed_shifted=0

The purity-gated inliner names the binding it inlined (the value is
computed, single-use, and its occurrence is a head position):

  $ xqse --explain -e 'let $x := count((1 to 5)) return $x + 1'
  (fn:count((1 to 5)) + 1)
  rewrite: inline_lets: pure single-use $x := fn:count((1 to 5))
  rewrite: pass 1: folded=0 inlined=0 inlined_pure=1 joins=0 pushed=0 pushed_shifted=0
  stats: folded=0 inlined=0 inlined_pure=1 joins=0 pushed=0 pushed_shifted=0

The focus-shift pushdown logs the fresh rebinding [let] it introduced:

  $ xqse --explain -e 'for $x in (1,2,3) where count((1,2)[. le $x]) eq 2 return $x'
  for $x in ((1, 2, 3))[let $x_1 := . return (fn:count(((1, 2))[(. le $x_1)]) eq 2)] return $x
  rewrite: pushdown_predicates: $x where (fn:count(((1, 2))[(. le $x)]) eq 2) (shifted focus, fresh binding)
  rewrite: pass 1: folded=0 inlined=0 inlined_pure=0 joins=0 pushed=0 pushed_shifted=1
  stats: folded=0 inlined=0 inlined_pure=0 joins=0 pushed=0 pushed_shifted=1

A bare numeric where is an effective-boolean-value test; the pushdown
wraps it in fn:boolean so it cannot become a positional predicate, and
both modes agree (this once returned the empty sequence optimized):

  $ echo 'for $x in (2,3) where $x return $x' | xqse -
  2 3

  $ echo 'for $x in (2,3) where $x return $x' | xqse --no-optimize -
  2 3

Dynamic errors report their code:

  $ xqse -e '1 div 0'
  xqse: dynamic error err:FOAR0001: division by zero
  [124]

Syntax errors report position:

  $ xqse -e 'for $x in'
  xqse: syntax error at 1:10: unexpected end of input
  [124]

--explain names the enclosing declaration for every rewrite:

  $ xqse --explain -e 'declare function local:dbl($n as xs:integer) as xs:integer { $n * (1 + 1) };
  > declare procedure local:go() as xs:integer {
  >   declare $x := 2 + 3;
  >   return value local:dbl($x);
  > };
  > local:go()'
  declare function local:dbl($n as xs:integer) as xs:integer { ($n * 2) };
  declare procedure local:go() as xs:integer {
    declare $x := 5;
    return value local:dbl($x);
  };
  local:go()
  rewrite: [local:dbl] fold_constants: (1 + 1) => 2
  rewrite: [local:dbl] pass 1: folded=1 inlined=0 inlined_pure=0 joins=0 pushed=0 pushed_shifted=0
  rewrite: [local:go] fold_constants: (2 + 3) => 5
  rewrite: [local:go] pass 1: folded=1 inlined=0 inlined_pure=0 joins=0 pushed=0 pushed_shifted=0
  stats: folded=2 inlined=0 inlined_pure=0 joins=0 pushed=0 pushed_shifted=0

--trace emits the span tree on stderr (durations vary, so they are
masked here); fn:trace output and optimizer rewrites ride along as
notes, indented under the span that produced them:

  $ xqse --trace -e 'trace(2 + 2, "sum")' 2>&1 | sed -E 's/\([0-9.]+ms\)/(_ms)/'
      fold_constants: (2 + 2) => 4
      pass 1: folded=1 inlined=0 inlined_pure=0 joins=0 pushed=0 pushed_shifted=0
    compile (_ms)
      trace: sum: 4
    run (_ms)
  query (_ms)
  4

--trace=json emits one JSON object per span or note; nesting lives in
the id/parent/depth fields:

  $ xqse --trace=json -e '2 + 2' 2>&1 | sed -E 's/"(start_ms|dur_ms)":[0-9.]+/"\1":0/g'
  {"type":"note","depth":2,"text":"fold_constants: (2 + 2) => 4"}
  {"type":"note","depth":2,"text":"pass 1: folded=1 inlined=0 inlined_pure=0 joins=0 pushed=0 pushed_shifted=0"}
  {"type":"span","id":2,"parent":1,"depth":1,"name":"compile","attrs":{},"start_ms":0,"dur_ms":0}
  {"type":"span","id":3,"parent":1,"depth":1,"name":"run","attrs":{},"start_ms":0,"dur_ms":0}
  {"type":"span","id":1,"parent":0,"depth":0,"name":"query","attrs":{},"start_ms":0,"dur_ms":0}
  4

--stats prints the counter table after the result (span timings are
wall-clock, masked here):

  $ xqse --stats -e '1 + 2 * 3' | sed -E 's/^(time\.[a-z.]+\.ms) +[0-9.]+$/\1 _/'
  7
  queries.compiled                     1
  plan.cache.hit                       0
  plan.cache.miss                      1
  plan.cache.invalidate                0
  optimizer.folded                     2
  optimizer.inlined                    0
  optimizer.inlined.pure               0
  optimizer.joins                      0
  optimizer.pushed                     0
  optimizer.pushed.shifted             0
  sql.generated                        0
  sql.executed                         0
  rows.scanned                         0
  rows.fetched                         0
  ws.calls                             0
  ws.faults                            0
  xqse.statements                      0
  sdo.submits                          0
  sdo.statements                       0
  resil.retries                        0
  resil.timeouts                       0
  resil.breaker.trips                  0
  resil.breaker.rejected               0
  resil.degraded                       0
  resil.faults.injected                0
  stream.pulled                        0
  stream.materialized                  0
  stream.early_exits                   0
  server.jobs                          0
  server.errors                        0
  server.submits                       0
  mvcc.versions.live                   0
  mvcc.versions.collected              0
  mvcc.lock.acquired                   0
  mvcc.lock.contended                  0
  overload.shed                        0
  overload.expired                     0
  overload.brownout.entered            0
  overload.brownout.exited             0
  cache.hit                            0
  cache.miss                           0
  cache.evict                          0
  cache.bypass                         0
  time.optimizer.fold.ms _
  time.optimizer.normalize.ms _
  time.optimizer.inline.ms _
  time.optimizer.join.ms _
  time.optimizer.push.ms _
  time.deadline.budget.ms _
  time.compile.ms _
  time.run.ms _
  time.query.ms _

The interactive session persists declarations:

  $ printf 'declare variable $k := 10;;;\n$k * $k;;\n' | xqse -i
  XQSE interactive session. End input with ';;'. Declarations persist.
  xqse> declared.
  xqse> 100
  xqse> 

The interactive session always records counters; the stats command
prints the cumulative table (span times masked):

  $ printf '2 + 3;;\nstats;;\n' | xqse -i | sed -E 's/^(time\.[a-z.]+\.ms) +[0-9.]+$/\1 _/'
  XQSE interactive session. End input with ';;'. Declarations persist.
  xqse> 5
  xqse> queries.compiled                     1
  plan.cache.hit                       0
  plan.cache.miss                      1
  plan.cache.invalidate                0
  optimizer.folded                     1
  optimizer.inlined                    0
  optimizer.inlined.pure               0
  optimizer.joins                      0
  optimizer.pushed                     0
  optimizer.pushed.shifted             0
  sql.generated                        0
  sql.executed                         0
  rows.scanned                         0
  rows.fetched                         0
  ws.calls                             0
  ws.faults                            0
  xqse.statements                      0
  sdo.submits                          0
  sdo.statements                       0
  resil.retries                        0
  resil.timeouts                       0
  resil.breaker.trips                  0
  resil.breaker.rejected               0
  resil.degraded                       0
  resil.faults.injected                0
  stream.pulled                        0
  stream.materialized                  0
  stream.early_exits                   0
  server.jobs                          0
  server.errors                        0
  server.submits                       0
  mvcc.versions.live                   0
  mvcc.versions.collected              0
  mvcc.lock.acquired                   0
  mvcc.lock.contended                  0
  overload.shed                        0
  overload.expired                     0
  overload.brownout.entered            0
  overload.brownout.exited             0
  cache.hit                            0
  cache.miss                           0
  cache.evict                          0
  cache.bypass                         0
  time.optimizer.fold.ms _
  time.optimizer.normalize.ms _
  time.optimizer.inline.ms _
  time.optimizer.join.ms _
  time.optimizer.push.ms _
  time.deadline.budget.ms _
  time.compile.ms _
  time.run.ms _
  time.query.ms _
  xqse> 
