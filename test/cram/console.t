The console's catalog shows the design view of every service:

  $ aldsp-console --catalog | grep "^data service"
  data service db1/CUSTOMER  [entity, physical (relational db1.CUSTOMER)]
  data service db1/ORDERS  [entity, physical (relational db1.ORDERS)]
  data service db2/CREDIT_CARD  [entity, physical (relational db2.CREDIT_CARD)]
  data service CreditRatingService  [library, physical (web service CreditRatingService)]
  data service CustomerProfile  [entity, logical]
  data service hr/EMPLOYEE  [entity, physical (relational hr.EMPLOYEE)]

Ad-hoc queries run against the dataspace:

  $ aldsp-console -q "count(profile:getProfile())"
  6

  $ aldsp-console -q "string-join(uc:getManagementChain(5)/Name, ' -> ')"
  Nils Walker -&gt; Bob Lee -&gt; Mona Davis -&gt; Dana Wilson

The stats command prints the session's cumulative execution counters
(the web service is called once per profile, and every source row read
is accounted):

  $ aldsp-console -q 'count(profile:getProfile())' -q stats
  6
  queries.compiled                   1
  plan.cache.hit                     0
  plan.cache.miss                    1
  plan.cache.invalidate              0
  optimizer.folded                   0
  optimizer.inlined                  0
  optimizer.inlined.pure             0
  optimizer.joins                    0
  optimizer.pushed                   0
  optimizer.pushed.shifted           0
  sql.generated                      0
  sql.executed                       0
  rows.scanned                      62
  rows.fetched                      62
  ws.calls                           6
  ws.faults                          0
  xqse.statements                    0
  sdo.submits                        0
  sdo.statements                     0
  resil.retries                      0
  resil.timeouts                     0
  resil.breaker.trips                0
  resil.breaker.rejected             0
  resil.degraded                     0
  resil.faults.injected              0
  stream.pulled                     62
  stream.materialized               62
  stream.early_exits                 0
  server.jobs                        0
  server.errors                      0
  server.submits                     0
  mvcc.versions.live                 0
  mvcc.versions.collected            1
  mvcc.lock.acquired                 1
  mvcc.lock.contended                0
  overload.shed                      0
  overload.expired                   0
  overload.brownout.entered          0
  overload.brownout.exited           0
  cache.hit                          0
  cache.miss                         0
  cache.evict                        0
  cache.bypass                       0

The lineage view explains update decomposition:

  $ aldsp-console --lineage CustomerProfile | head -5
  <CustomerProfile> <- db1.CUSTOMER
    CID <- CID
    LAST_NAME <- LAST_NAME
    FIRST_NAME <- FIRST_NAME
    CreditRating <- (computed, read-only)

Errors are reported, not fatal:

  $ aldsp-console -q "no:such()"
  syntax error at 1:8: undeclared namespace prefix "no"

Chaos mode puts the dataspace under a seeded, replayable fault plan:
injected transients are retried under each source's policy, and the
credit-rating service degrades profile reads (profile without rating,
plus a report) instead of failing them. The same seed always injects
the same faults:

  $ aldsp-console --chaos-seed 7 --chaos-profile heavy \
  >   -q 'fn:count(profile:getProfile())' \
  >   -q 'resil:degradations()/string(@code)' \
  >   -q 'stats' | sed -n '1,3p;23,28p'
  chaos: seed 7, profile heavy
  6
  RESX0003 RESX0003 RESX0003
  resil.retries                      6
  resil.timeouts                     0
  resil.breaker.trips                0
  resil.breaker.rejected             0
  resil.degraded                     3
  resil.faults.injected              9

The breakers command surfaces per-source circuit state (only the
credit-rating service carries a breaker in the demo policy set):

  $ aldsp-console --chaos-seed 1 -q breakers
  chaos: seed 1, profile light
  CreditRatingService  closed
  db1                  no breaker
  db2                  no breaker
  hr                   no breaker

Without a fault plan no policies are installed, so no breakers either:

  $ aldsp-console -q breakers
  CreditRatingService  no breaker
  db1                  no breaker
  db2                  no breaker
  hr                   no breaker

The tables command reports per-table MVCC state: the published version
(every fixture insert after registration publishes one), how many
versions are still pinned live, and the write lock — always free here,
since the console is single-threaded:

  $ aldsp-console -q tables
  db1.CUSTOMER     v6   live 1  lock free waiters 0
  db1.ORDERS       v15  live 1  lock free waiters 0
  db2.CREDIT_CARD  v7   live 1  lock free waiters 0
  hr.EMPLOYEE      v5   live 1  lock free waiters 0

A committed update publishes a new version of exactly the table its
statement wrote:

  $ aldsp-console \
  >   -q '{ customer:updateCUSTOMER(<CUSTOMER><CID>007</CID><LAST_NAME>Moneypenny</LAST_NAME></CUSTOMER>); }' \
  >   -q tables
  
  db1.CUSTOMER     v7   live 1  lock free waiters 0
  db1.ORDERS       v15  live 1  lock free waiters 0
  db2.CREDIT_CARD  v7   live 1  lock free waiters 0
  hr.EMPLOYEE      v5   live 1  lock free waiters 0

