(* The W3C XQuery Use Cases "XMP" queries (the classic bibliography
   workload) — a realistic exercise of FLWOR, joins across documents,
   grouping via distinct-values, ordering and constructors. *)

open Util
open Core

let bib_xml =
  {|<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor><last>Gerbarg</last><first>Darcy</first><affiliation>CITI</affiliation></editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>|}

let reviews_xml =
  {|<reviews>
  <entry>
    <title>Data on the Web</title>
    <price>34.95</price>
    <review>A very good discussion of semi-structured database systems and XML.</review>
  </entry>
  <entry>
    <title>Advanced Programming in the Unix environment</title>
    <price>65.95</price>
    <review>A clear and detailed discussion of UNIX programming.</review>
  </entry>
  <entry>
    <title>TCP/IP Illustrated</title>
    <price>65.95</price>
    <review>One of the best books on TCP/IP.</review>
  </entry>
</reviews>|}

let xmp ?(vars = []) src =
  let engine = Xquery.Engine.create () in
  Xquery.Engine.register_doc engine "bib.xml" (Xdm.Xml_parse.parse bib_xml);
  Xquery.Engine.register_doc engine "reviews.xml"
    (Xdm.Xml_parse.parse reviews_xml);
  Xdm.Xml_serialize.seq_to_string
    (Xquery.Engine.eval_string
       ~opts:{ Xquery.Engine.default_run_opts with vars }
       engine src)

let qx name expected src =
  case name (fun () -> check_string src expected (xmp src))

let tests =
  [
    qx "Q1: AW books after 1991"
      "<book year=\"1994\"><title>TCP/IP Illustrated</title></book><book year=\"1992\"><title>Advanced Programming in the Unix environment</title></book>"
      {|for $b in doc("bib.xml")/bib/book
        where $b/publisher = "Addison-Wesley" and $b/@year > 1991
        return <book year="{$b/@year}">{$b/title}</book>|};
    qx "Q2: flat title-author pairs" "10"
      {|count(for $b in doc("bib.xml")/bib/book, $t in $b/title, $a in $b/author
             return <result>{$t}{$a}</result>) + 5|};
    qx "Q3: titles with all their authors" "3"
      {|count(for $b in doc("bib.xml")/bib/book
             return <result>{$b/title}{$b/author}</result>[author])|};
    qx "Q4: books per author (grouping via distinct-values)"
      "Stevens:2 Abiteboul:1 Buneman:1 Suciu:1"
      {|string-join(
         for $last in distinct-values(doc("bib.xml")//author/last)
         return concat($last, ":",
                       count(doc("bib.xml")/bib/book[author/last = $last])),
         " ")|};
    qx "Q5: join books with reviews by title" "3"
      {|count(for $b in doc("bib.xml")/bib/book,
                  $e in doc("reviews.xml")/reviews/entry
             where $b/title eq $e/title
             return <book-with-prices>
                      {$b/title}
                      <price-review>{fn:data($e/price)}</price-review>
                      <price>{fn:data($b/price)}</price>
                    </book-with-prices>)|};
    qx "Q5 prices disagree only for one book" "Data on the Web"
      {|for $b in doc("bib.xml")/bib/book,
            $e in doc("reviews.xml")/reviews/entry
        where $b/title eq $e/title
          and xs:double($b/price) ne xs:double($e/price)
        return string($b/title)|};
    qx "Q6: books with more than one author use et-al" "Data on the Web: 3"
      {|for $b in doc("bib.xml")/bib/book
        where count($b/author) gt 1
        return concat($b/title, ": ", count($b/author))|};
    qx "Q7: AW titles sorted alphabetically"
      "Advanced Programming in the Unix environment|TCP/IP Illustrated"
      {|string-join(
         for $b in doc("bib.xml")//book
         where $b/publisher eq "Addison-Wesley"
         order by string($b/title)
         return string($b/title), "|")|};
    qx "Q8: books mentioning Suciu in an author name" "Data on the Web"
      {|for $b in doc("bib.xml")//book
        where some $a in $b/author satisfies contains(string($a/last), "Suciu")
        return string($b/title)|};
    qx "Q10: minimum review price per book" "65.95 34.95 65.95"
      {|for $t in distinct-values(doc("reviews.xml")//entry/title)
        order by $t
        return string(min(doc("reviews.xml")//entry[title = $t]/xs:double(price)))|};
    qx "Q11: editors vs authors (books without authors)" "1"
      {|count(doc("bib.xml")/bib/book[not(author)])|};
    qx "Q12: structural transformation into a summary"
      "<summary><pub name=\"Addison-Wesley\">2</pub><pub name=\"Kluwer Academic Publishers\">1</pub><pub name=\"Morgan Kaufmann Publishers\">1</pub></summary>"
      {|<summary>{
          for $p in distinct-values(doc("bib.xml")//publisher)
          order by $p
          return <pub name="{$p}">{count(doc("bib.xml")//book[publisher = $p])}</pub>
        }</summary>|};
    qx "average book price" "75.45"
      {|string(avg(doc("bib.xml")//book/xs:double(price)))|};
    qx "attribute predicates and arithmetic" "2000"
      {|string(max(doc("bib.xml")//book/xs:integer(@year)))|};
  ]

let suites = [ ("xmp.use-cases", tests) ]
