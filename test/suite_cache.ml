(* The lineage-invalidated result cache: admission verdicts, counter
   pinning, invalidation precision (a submit decomposed onto ORDERS
   must not evict CUSTOMER-only entries), degraded reads never
   admitted, and fingerprint isolation across with_config forks and
   registry generation bumps. *)

open Core
open Util
module FC = Fixtures.Customer_profile

let counter instr name =
  Option.value ~default:0
    (List.assoc_opt name (Instr.stats instr).Instr.counters)

let contains s sub =
  let n = String.length sub and l = String.length s in
  let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* a second logical service whose lineage touches CUSTOMER only — the
   probe for invalidation precision: submits onto other tables must
   leave its entries alone *)
let customers_ns = "ld:Customers"

let customers_source =
  {|
declare namespace ns2 = "ld:Customers";
declare namespace cus = "ld:db1/CUSTOMER";

declare function ns2:getCustomer() as element(ns2:Customer)* {
  for $c in cus:CUSTOMER()
  return <ns2:Customer>
    <CID>{fn:data($c/CID)}</CID>
    <LAST_NAME>{fn:data($c/LAST_NAME)}</LAST_NAME>
  </ns2:Customer>
};
|}

let add_customers_service env =
  let svc =
    Aldsp.Dataspace.create_entity_service env.FC.ds ~name:"Customers"
      ~namespace:customers_ns
      ~shape:
        {
          Xdm.Schema.name = Xdm.Qname.make ~uri:customers_ns "Customer";
          type_def =
            Xdm.Schema.complex
              [
                Xdm.Schema.particle (Xdm.Qname.local "CID")
                  (Xdm.Schema.simple (Xdm.Qname.xs "string"));
                Xdm.Schema.particle (Xdm.Qname.local "LAST_NAME")
                  (Xdm.Schema.simple (Xdm.Qname.xs "string"));
              ];
        }
      ~methods:[ ("getCustomer", Aldsp.Data_service.Read_function) ]
      ~generate_cud:false customers_source
  in
  Xqse.Session.declare_namespace
    (Aldsp.Dataspace.session env.FC.ds)
    "c2" customers_ns;
  svc

let cq = "c2:getCustomer()"

let admission_tests =
  [
    case "footprint verdicts: reads cacheable, procedures and ws ops not"
      (fun () ->
        let env = FC.make ~customers:1 () in
        ignore (add_customers_service env);
        ignore (Aldsp.Dataspace.enable_result_cache env.FC.ds);
        let fp u l n =
          Aldsp.Dataspace.footprint_of env.FC.ds (Xdm.Qname.make ~uri:u l) n
        in
        check_bool "physical read maps to its table" true
          (fp "ld:db1/CUSTOMER" "CUSTOMER" 0 = Some [ ("db1", "CUSTOMER") ]);
        check_bool "logical read spans its whole lineage" true
          (fp "ld:CustomerProfile" "getProfile" 0
          = Some
              [ ("db1", "CUSTOMER"); ("db1", "ORDERS"); ("db2", "CREDIT_CARD") ]);
        check_bool "customers-only logical read" true
          (fp customers_ns "getCustomer" 0 = Some [ ("db1", "CUSTOMER") ]);
        check_bool "ws operation has no footprint, never cacheable" true
          (fp "urn:creditrating" "getCreditRating" 1 = None);
        check_bool "physical procedure never cacheable" true
          (fp "ld:db1/CUSTOMER" "createCUSTOMER" 1 = None));
    case "counters pin across miss, hit, evict, bypass" (fun () ->
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let env = FC.make ~customers:1 ~instr () in
        ignore (add_customers_service env);
        let h = Aldsp.Dataspace.enable_result_cache env.FC.ds in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        (* one read admits two entries: the logical getCustomer call and
           the physical cus:CUSTOMER() read beneath it *)
        let r1 = Xqse.Session.eval_to_string sess cq in
        check_int "cold read misses twice" 2 (counter instr Instr.K.cache_miss);
        check_int "no hits yet" 0 (counter instr Instr.K.cache_hit);
        check_int "two entries" 2 (Cache.Store.size (Cache.store h));
        (* the warm read hits the outer entry and short-circuits the
           inner read entirely: exactly one hit *)
        let r2 = Xqse.Session.eval_to_string sess cq in
        check_string "hit replays the miss byte for byte" r1 r2;
        check_int "one hit" 1 (counter instr Instr.K.cache_hit);
        check_int "still two misses" 2 (counter instr Instr.K.cache_miss);
        check_int "lineage eviction evicts both entries" 2
          (Cache.invalidate h ~instr [ ("db1", "CUSTOMER") ]);
        check_int "evicts counted" 2 (counter instr Instr.K.cache_evict);
        check_int "store emptied" 0 (Cache.Store.size (Cache.store h));
        ignore (Xqse.Session.eval_to_string sess cq);
        check_int "evicted entries miss again" 4
          (counter instr Instr.K.cache_miss);
        let ws =
          {|crs:getCreditRating(<crs:getCreditRating><crs:lastName>X</crs:lastName><crs:ssn>1</crs:ssn></crs:getCreditRating>)|}
        in
        ignore (Xqse.Session.eval_to_string sess ws);
        ignore (Xqse.Session.eval_to_string sess ws);
        check_int "footprint-free reads bypass every time" 2
          (counter instr Instr.K.cache_bypass);
        check_int "bypass admits nothing" 2 (Cache.Store.size (Cache.store h)));
    case "degraded reads are never admitted" (fun () ->
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let ctl = Resilience.Control.create ~instr () in
        Resilience.Control.set_policy ctl ~source:"CreditRatingService"
          (Resilience.Policy.make
             ~breaker:
               {
                 Resilience.Breaker.failure_threshold = 1;
                 cooldown_ms = 1_000_000.;
               }
             ());
        Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
        let env = FC.make ~customers:1 ~instr ~resilience:ctl () in
        let h = Aldsp.Dataspace.enable_result_cache env.FC.ds in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        Resilience.Control.trip ctl ~source:"CreditRatingService";
        let q = "profile:getProfile()" in
        let r1 = Xqse.Session.eval_to_string sess q in
        check_bool "the read degraded" true
          (Resilience.Control.degradations ctl <> []);
        check_bool "no rating in the degraded result" false
          (contains r1 "<CreditRating>");
        let size1 = Cache.Store.size (Cache.store h) in
        let m1 = counter instr Instr.K.cache_miss in
        let r2 = Xqse.Session.eval_to_string sess q in
        check_string "degraded replay is deterministic" r1 r2;
        check_bool "degraded read misses again — it was refused" true
          (counter instr Instr.K.cache_miss > m1);
        check_int "no degraded entry ever admitted" size1
          (Cache.Store.size (Cache.store h)));
  ]

let invalidation_tests =
  [
    case "submit onto ORDERS does not evict CUSTOMER-only entries"
      (fun () ->
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let env = FC.make ~customers:2 ~instr () in
        ignore (add_customers_service env);
        ignore (Aldsp.Dataspace.enable_result_cache env.FC.ds);
        let sess = Aldsp.Dataspace.session env.FC.ds in
        ignore (Xqse.Session.eval_to_string sess cq);
        (* populate profile entries, then rewrite one order's STATUS —
           the change decomposes onto db1/ORDERS alone *)
        let dg = FC.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1
          [ ("Orders", 1); ("ORDERS", 1); ("STATUS", 1) ]
          "SHIPPED";
        let sr = Aldsp.Dataspace.submit env.FC.ds env.FC.svc dg in
        check_bool "order submit committed" true sr.Aldsp.Dataspace.sr_committed;
        check_bool "the submit evicted profile entries" true
          (counter instr Instr.K.cache_evict > 0);
        let h0 = counter instr Instr.K.cache_hit in
        let m0 = counter instr Instr.K.cache_miss in
        ignore (Xqse.Session.eval_to_string sess cq);
        check_int "customer-only entry survived: hit" (h0 + 1)
          (counter instr Instr.K.cache_hit);
        check_int "customer-only entry survived: no miss" m0
          (counter instr Instr.K.cache_miss);
        (* the evicted profile read re-reads the sources, not the cache *)
        let status =
          Xqse.Session.eval_to_string sess
            {|(profile:getProfileById("007")/Orders/ORDERS)[1]/STATUS|}
        in
        check_bool "fresh read sees the committed STATUS" true
          (contains status "SHIPPED");
        (* a CUSTOMER submit, by contrast, does evict the probe entry *)
        let dg2 = FC.get_profile_by_id env "007" in
        Sdo.set_leaf dg2 1 [ ("LAST_NAME", 1) ] "Moneypenny";
        let sr2 = Aldsp.Dataspace.submit env.FC.ds env.FC.svc dg2 in
        check_bool "customer submit committed" true
          sr2.Aldsp.Dataspace.sr_committed;
        let m1 = counter instr Instr.K.cache_miss in
        let after = Xqse.Session.eval_to_string sess cq in
        (* both CUSTOMER entries — logical and physical — were evicted *)
        check_int "customer entries evicted: fresh misses" (m1 + 2)
          (counter instr Instr.K.cache_miss);
        check_bool "fresh read sees the committed LAST_NAME" true
          (contains after "Moneypenny"));
  ]

let fingerprint_tests =
  [
    case "with_config forks share entries under one fingerprint" (fun () ->
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let env = FC.make ~customers:1 ~instr () in
        ignore (add_customers_service env);
        ignore (Aldsp.Dataspace.enable_result_cache env.FC.ds);
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let r0 = Xqse.Session.eval_to_string sess cq in
        check_int "base misses" 2 (counter instr Instr.K.cache_miss);
        (* an identically-configured fork (a pool worker) lands on the
           same fingerprint and shares the warm entry *)
        let same = Xqse.Session.with_config sess (Xqse.Session.config sess) in
        let r1 = Xqse.Session.eval_to_string same cq in
        check_string "fork reads the shared entry" r0 r1;
        check_int "fork hit" 1 (counter instr Instr.K.cache_hit);
        check_int "fork added no miss" 2 (counter instr Instr.K.cache_miss);
        (* a differently-configured fork moves to a fresh fingerprint:
           no cross-config hit, same result recomputed *)
        let noopt =
          Xqse.Session.with_config sess
            { (Xqse.Session.config sess) with Xqse.Session.optimize = false }
        in
        let r2 = Xqse.Session.eval_to_string noopt cq in
        check_string "unoptimized fork recomputes the same result" r0 r2;
        check_int "unoptimized fork missed" 4 (counter instr Instr.K.cache_miss);
        check_int "both fingerprints admitted" 4
          (Cache.Store.size
             (Cache.store
                (Option.get (Aldsp.Dataspace.result_cache env.FC.ds)))));
    case "a registration bump strands the old fingerprint's entries"
      (fun () ->
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let env = FC.make ~customers:1 ~instr () in
        ignore (add_customers_service env);
        let h = Aldsp.Dataspace.enable_result_cache env.FC.ds in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        ignore (Xqse.Session.eval_to_string sess cq);
        ignore (Xqse.Session.eval_to_string sess cq);
        check_int "warm before the bump" 1 (counter instr Instr.K.cache_hit);
        (* registering anything bumps the session generation: the next
           read keys under a fresh fingerprint and recomputes *)
        Xqse.Session.register_function sess
          (Xdm.Qname.make ~uri:"urn:test" "ping")
          0
          (fun _ -> []);
        ignore (Xqse.Session.eval_to_string sess cq);
        check_int "post-bump read misses" 4 (counter instr Instr.K.cache_miss);
        check_int "no stale cross-generation hit" 1
          (counter instr Instr.K.cache_hit);
        check_int "old entries stranded, new ones admitted" 4
          (Cache.Store.size (Cache.store h)));
  ]

let suites =
  [
    ("cache.admission", admission_tests);
    ("cache.invalidation", invalidation_tests);
    ("cache.fingerprint", fingerprint_tests);
  ]
