let () =
  Alcotest.run "xqse-repro"
    (Suite_xdm.suites @ Suite_xml.suites @ Suite_xquery.suites
   @ Suite_functions.suites @ Suite_update.suites @ Suite_optimizer.suites
   @ Suite_purity.suites @ Suite_differential.suites @ Suite_streaming.suites
   @ Suite_xqse.suites @ Suite_relational.suites @ Suite_sdo.suites
   @ Suite_aldsp.suites @ Suite_instr.suites @ Suite_resilience.suites @ Suite_integration.suites @ Suite_extensions.suites @ Suite_paper_ebnf.suites @ Suite_pretty.suites @ Suite_temporal.suites @ Suite_xmp.suites @ Suite_robustness.suites @ Suite_semantics.suites @ Suite_session.suites @ Suite_interactions.suites @ Suite_sqlgen.suites
   @ Suite_server.suites @ Suite_cache.suites)
