(* The relational substrate: values, predicates, tables, databases,
   transactions and two-phase commit. *)

open Util
open Core.Relational

let col name col_type nullable = { Table.col_name = name; col_type; nullable }

let people_schema =
  {
    Table.tbl_name = "PEOPLE";
    columns =
      [
        col "ID" Value.T_int false;
        col "NAME" Value.T_text false;
        col "AGE" Value.T_int true;
      ];
    primary_key = [ "ID" ];
    foreign_keys = [];
  }

let pets_schema =
  {
    Table.tbl_name = "PETS";
    columns =
      [
        col "PID" Value.T_int false;
        col "OWNER" Value.T_int false;
        col "KIND" Value.T_text true;
      ];
    primary_key = [ "PID" ];
    foreign_keys =
      [
        {
          Table.fk_columns = [ "OWNER" ];
          fk_ref_table = "PEOPLE";
          fk_ref_columns = [ "ID" ];
        };
      ];
  }

let mk_db () =
  let db = Database.create "testdb" in
  let people = Database.add_table db people_schema in
  let pets = Database.add_table db pets_schema in
  Table.insert people [| Value.Int 1; Text "Ann"; Int 34 |];
  Table.insert people [| Value.Int 2; Text "Bob"; Null |];
  Table.insert pets [| Value.Int 10; Int 1; Text "cat" |];
  (db, people, pets)

let value_tests =
  [
    case "equality across int and float" (fun () ->
        check_bool "eq" true (Value.equal (Value.Int 2) (Value.Float 2.0)));
    case "null equals null (total)" (fun () ->
        check_bool "eq" true (Value.equal Value.Null Value.Null));
    case "sql literal quoting" (fun () ->
        check_string "text" "'O''Brien'" (Value.sql_literal (Value.Text "O'Brien"));
        check_string "null" "NULL" (Value.sql_literal Value.Null);
        check_string "date" "DATE '2007-01-01'" (Value.sql_literal (Value.Date "2007-01-01")));
    case "of_string parses typed values" (fun () ->
        check_bool "int" true (Value.of_string Value.T_int " 42 " = Value.Int 42);
        check_bool "bool" true (Value.of_string Value.T_bool "true" = Value.Bool true);
        check_bool "raises" true
          (match Value.of_string Value.T_int "x" with
          | _ -> false
          | exception Failure _ -> true));
    case "matches_type: null matches everything" (fun () ->
        check_bool "null" true (Value.matches_type Value.Null Value.T_date);
        check_bool "int as float" true (Value.matches_type (Value.Int 1) Value.T_float);
        check_bool "text as int" false (Value.matches_type (Value.Text "1") Value.T_int));
  ]

let pred_tests =
  [
    case "comparison with null is false" (fun () ->
        let get _ = Value.Null in
        check_bool "eq" false (Pred.eval ~get (Pred.eq "X" (Value.Int 1)));
        check_bool "is_null" true (Pred.eval ~get (Pred.Is_null "X")));
    case "conj of empty list is true" (fun () ->
        check_bool "true" true (Pred.eval ~get:(fun _ -> Value.Null) (Pred.conj [])));
    case "and/or/not" (fun () ->
        let get = function "A" -> Value.Int 1 | _ -> Value.Int 2 in
        let p =
          Pred.And
            ( Pred.eq "A" (Value.Int 1),
              Pred.Or (Pred.eq "B" (Value.Int 9), Pred.Not (Pred.eq "B" (Value.Int 9))) )
        in
        check_bool "combo" true (Pred.eval ~get p));
    case "in list" (fun () ->
        let get _ = Value.Text "b" in
        check_bool "in" true
          (Pred.eval ~get (Pred.In ("X", [ Value.Text "a"; Value.Text "b" ]))));
    case "to_sql rendering" (fun () ->
        check_string "sql" "(A = 1 AND B <> 'x')"
          (Pred.to_sql
             (Pred.And (Pred.eq "A" (Value.Int 1), Pred.Cmp (Pred.Ne, "B", Value.Text "x")))));
  ]

let table_tests =
  [
    case "insert and scan in pk order" (fun () ->
        let _, people, _ = mk_db () in
        check_int "rows" 2 (Table.row_count people);
        let ids = List.map (fun r -> Table.get r people "ID") (Table.scan people) in
        check_bool "order" true (ids = [ Value.Int 1; Value.Int 2 ]));
    case "duplicate primary key rejected" (fun () ->
        let _, people, _ = mk_db () in
        check_bool "raises" true
          (match Table.insert people [| Value.Int 1; Text "Dup"; Null |] with
          | () -> false
          | exception Table.Constraint_violation _ -> true));
    case "null in non-nullable column rejected" (fun () ->
        let _, people, _ = mk_db () in
        check_bool "raises" true
          (match Table.insert people [| Value.Int 3; Null; Null |] with
          | () -> false
          | exception Table.Constraint_violation _ -> true));
    case "type mismatch rejected" (fun () ->
        let _, people, _ = mk_db () in
        check_bool "raises" true
          (match Table.insert people [| Value.Int 3; Text "C"; Text "old" |] with
          | () -> false
          | exception Table.Constraint_violation _ -> true));
    case "insert_named fills nullable columns" (fun () ->
        let _, people, _ = mk_db () in
        let row = Table.insert_named people [ ("ID", Value.Int 5); ("NAME", Value.Text "Eve") ] in
        check_bool "age null" true (Table.get row people "AGE" = Value.Null));
    case "insert_named rejects unknown columns" (fun () ->
        let _, people, _ = mk_db () in
        check_bool "raises" true
          (match Table.insert_named people [ ("ID", Value.Int 6); ("NAME", Value.Text "x"); ("SHOE", Value.Int 44) ] with
          | _ -> false
          | exception Table.Constraint_violation _ -> true));
    case "select with predicate" (fun () ->
        let _, people, _ = mk_db () in
        check_int "matches" 1
          (List.length (Table.select people (Pred.Cmp (Pred.Gt, "AGE", Value.Int 30)))));
    case "update_rows returns old and new" (fun () ->
        let _, people, _ = mk_db () in
        let olds, news = Table.update_rows people (Pred.eq "ID" (Value.Int 1)) [ ("AGE", Value.Int 35) ] in
        check_int "olds" 1 (List.length olds);
        check_bool "old age" true (Table.get (List.hd olds) people "AGE" = Value.Int 34);
        check_bool "new age" true (Table.get (List.hd news) people "AGE" = Value.Int 35));
    case "update of pk re-keys the row" (fun () ->
        let _, people, _ = mk_db () in
        ignore (Table.update_rows people (Pred.eq "ID" (Value.Int 2)) [ ("ID", Value.Int 9) ]);
        check_bool "found" true (Table.find_pk people [ Value.Int 9 ] <> None);
        check_bool "gone" true (Table.find_pk people [ Value.Int 2 ] = None));
    case "pk collision during update restores state" (fun () ->
        let _, people, _ = mk_db () in
        (match Table.update_rows people (Pred.eq "ID" (Value.Int 2)) [ ("ID", Value.Int 1) ] with
        | _ -> Alcotest.fail "expected constraint violation"
        | exception Table.Constraint_violation _ -> ());
        check_int "rows preserved" 2 (Table.row_count people));
    case "delete_rows" (fun () ->
        let _, people, _ = mk_db () in
        let gone = Table.delete_rows people (Pred.eq "NAME" (Value.Text "Bob")) in
        check_int "deleted" 1 (List.length gone);
        check_int "left" 1 (Table.row_count people));
  ]

let database_tests =
  [
    case "exec insert logs SQL" (fun () ->
        let db, _, _ = mk_db () in
        Database.clear_log db;
        let n =
          Database.exec db
            (Database.Insert
               { table = "PEOPLE"; columns = [ "ID"; "NAME" ]; values = [ Value.Int 7; Value.Text "Gil" ] })
        in
        check_int "affected" 1 n;
        check_bool "logged" true
          (Database.sql_log db = [ "INSERT INTO PEOPLE (ID, NAME) VALUES (7, 'Gil')" ]));
    case "exec update affected count" (fun () ->
        let db, _, _ = mk_db () in
        let n =
          Database.exec db
            (Database.Update { table = "PEOPLE"; set = [ ("AGE", Value.Int 1) ]; where = Pred.True })
        in
        check_int "affected" 2 n);
    case "conditioned update misses" (fun () ->
        let db, _, _ = mk_db () in
        let n =
          Database.exec db
            (Database.Update
               { table = "PEOPLE"; set = [ ("AGE", Value.Int 1) ];
                 where = Pred.eq "NAME" (Value.Text "Zeb") })
        in
        check_int "affected" 0 n);
    case "fk violation on insert" (fun () ->
        let db, _, _ = mk_db () in
        check_bool "raises" true
          (match
             Database.exec db
               (Database.Insert
                  { table = "PETS"; columns = [ "PID"; "OWNER" ]; values = [ Value.Int 11; Value.Int 99 ] })
           with
          | _ -> false
          | exception Database.Db_error _ -> true));
    case "fk blocks delete of referenced row" (fun () ->
        let db, _, _ = mk_db () in
        check_bool "raises" true
          (match
             Database.exec db
               (Database.Delete { table = "PEOPLE"; where = Pred.eq "ID" (Value.Int 1) })
           with
          | _ -> false
          | exception Database.Db_error _ -> true));
    case "delete of unreferenced row fine" (fun () ->
        let db, _, _ = mk_db () in
        check_int "affected" 1
          (Database.exec db
             (Database.Delete { table = "PEOPLE"; where = Pred.eq "ID" (Value.Int 2) })));
    case "rollback undoes inserts, updates and deletes" (fun () ->
        let db, people, _ = mk_db () in
        Database.begin_tx db;
        ignore (Database.exec db
            (Database.Insert { table = "PEOPLE"; columns = [ "ID"; "NAME" ]; values = [ Value.Int 8; Value.Text "H" ] }));
        ignore (Database.exec db
            (Database.Update { table = "PEOPLE"; set = [ ("NAME", Value.Text "Annie") ]; where = Pred.eq "ID" (Value.Int 1) }));
        ignore (Database.exec db
            (Database.Delete { table = "PEOPLE"; where = Pred.eq "ID" (Value.Int 2) }));
        Database.rollback db;
        check_int "rows back" 2 (Table.row_count people);
        check_bool "name back" true
          (match Table.find_pk people [ Value.Int 1 ] with
          | Some row -> Table.get row people "NAME" = Value.Text "Ann"
          | None -> false);
        check_bool "deleted back" true (Table.find_pk people [ Value.Int 2 ] <> None));
    case "commit keeps changes" (fun () ->
        let db, people, _ = mk_db () in
        Database.begin_tx db;
        ignore (Database.exec db
            (Database.Insert { table = "PEOPLE"; columns = [ "ID"; "NAME" ]; values = [ Value.Int 8; Value.Text "H" ] }));
        Database.commit db;
        check_int "rows" 3 (Table.row_count people));
    case "nested begin rejected" (fun () ->
        let db, _, _ = mk_db () in
        Database.begin_tx db;
        check_bool "raises" true
          (match Database.begin_tx db with
          | () -> false
          | exception Database.Db_error _ -> true));
    case "statement failure injection" (fun () ->
        let db, _, _ = mk_db () in
        Database.set_fail_statements_after db (Some 1);
        ignore (Database.exec db
            (Database.Delete { table = "PETS"; where = Pred.True }));
        check_bool "raises" true
          (match Database.exec db (Database.Delete { table = "PETS"; where = Pred.True }) with
          | _ -> false
          | exception Database.Db_error _ -> true));
    prop "insert then delete is the identity on row count"
      QCheck.(small_list (int_range 100 200))
      (fun ids ->
        let db = Database.create "p" in
        let t = Database.add_table db people_schema in
        let before = Table.row_count t in
        let unique = List.sort_uniq compare ids in
        List.iter
          (fun id -> ignore (Database.exec db
               (Database.Insert { table = "PEOPLE"; columns = [ "ID"; "NAME" ]; values = [ Value.Int id; Value.Text "x" ] })))
          unique;
        List.iter
          (fun id -> ignore (Database.exec db
               (Database.Delete { table = "PEOPLE"; where = Pred.eq "ID" (Value.Int id) })))
          unique;
        Table.row_count t = before);
  ]

let xa_tests =
  let two_dbs () =
    let a = Database.create "a" in
    let ta = Database.add_table a people_schema in
    let b = Database.create "b" in
    let tb = Database.add_table b people_schema in
    (a, ta, b, tb)
  in
  let ins db id =
    ignore (Database.exec db
        (Database.Insert { table = "PEOPLE"; columns = [ "ID"; "NAME" ]; values = [ Value.Int id; Value.Text "x" ] }))
  in
  [
    case "successful 2pc commits both" (fun () ->
        let a, ta, b, tb = two_dbs () in
        (match Xa.run [ a; b ] (fun () -> ins a 1; ins b 2) with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        check_int "a" 1 (Table.row_count ta);
        check_int "b" 1 (Table.row_count tb));
    case "prepare failure rolls back both" (fun () ->
        let a, ta, b, tb = two_dbs () in
        Database.set_fail_on_prepare b true;
        (match Xa.run [ a; b ] (fun () -> ins a 1; ins b 2) with
        | Ok () -> Alcotest.fail "expected abort"
        | Error _ -> ());
        check_int "a" 0 (Table.row_count ta);
        check_int "b" 0 (Table.row_count tb));
    case "statement failure during work aborts all" (fun () ->
        let a, ta, b, tb = two_dbs () in
        Database.set_fail_statements_after b (Some 0);
        (match Xa.run [ a; b ] (fun () -> ins a 1; ins b 2) with
        | Ok () -> Alcotest.fail "expected abort"
        | Error _ -> ());
        check_int "a" 0 (Table.row_count ta);
        check_int "b" 0 (Table.row_count tb));
    case "trace records the protocol phases" (fun () ->
        let a, _, b, _ = two_dbs () in
        let _, trace = Xa.run_traced [ a; b ] (fun () -> ins a 1) in
        check_bool "shape" true
          (trace
          = [ Xa.Begin "a"; Xa.Begin "b"; Xa.Prepare_ok "a"; Xa.Prepare_ok "b";
              Xa.Commit "a"; Xa.Commit "b" ]));
    case "trace on prepare failure shows rollbacks" (fun () ->
        let a, _, b, _ = two_dbs () in
        Database.set_fail_on_prepare a true;
        let _, trace = Xa.run_traced [ a; b ] (fun () -> ins b 1) in
        check_bool "has rollback" true
          (List.mem (Xa.Rollback "a") trace && List.mem (Xa.Rollback "b") trace);
        check_bool "no commit" true
          (not (List.exists (function Xa.Commit _ -> true | _ -> false) trace)));
    case "exceptions from work propagate after rollback" (fun () ->
        let a, ta, b, _ = two_dbs () in
        (match Xa.run [ a; b ] (fun () -> ins a 1; failwith "boom") with
        | _ -> Alcotest.fail "expected exception"
        | exception Failure m -> check_string "msg" "boom" m);
        check_int "rolled back" 0 (Table.row_count ta);
        check_bool "tx closed" true (not (Database.in_tx a) && not (Database.in_tx b)));
    prop "atomicity under random prepare-fault patterns"
      ~count:50
      QCheck.(pair bool bool)
      (fun (fa, fb) ->
        let a, ta, b, tb = two_dbs () in
        Database.set_fail_on_prepare a fa;
        Database.set_fail_on_prepare b fb;
        let result = Xa.run [ a; b ] (fun () -> ins a 1; ins b 2) in
        let counts = (Table.row_count ta, Table.row_count tb) in
        match result with
        | Ok () -> (not fa) && (not fb) && counts = (1, 1)
        | Error _ -> (fa || fb) && counts = (0, 0));
  ]

(* The MVCC version lifecycle at the table grain: cursors pin the
   version current when they opened, superseded versions collect as
   soon as nothing pins them, and transactions publish exactly one new
   version per written table. *)
let mvcc_tests =
  [
    case "a cursor pins its version across commits; exhausting collects it"
      (fun () ->
        let db, people, _ = mk_db () in
        let instr = Core.Instr.create () in
        Core.Instr.preregister instr;
        Core.Instr.enable instr;
        Database.set_instr db instr;
        let v0 = Table.current_version people in
        let cur = Table.scan_cursor people in
        let first = Option.get (Xdm.Cursor.next cur) in
        (* five commits supersede the pinned version five times over;
           only the cursor's version and the head stay live — the
           intermediate versions collect at the moment each is
           superseded *)
        for i = 1 to 5 do
          ignore
            (Database.exec db
               (Update
                  {
                    table = "PEOPLE";
                    set = [ ("AGE", Value.Int (40 + i)) ];
                    where = Pred.eq "ID" (Value.Int 1);
                  }))
        done;
        check_int "head moved five versions" (v0 + 5)
          (Table.current_version people);
        check_int "live versions bounded to pinned + head" 2
          (Table.live_versions people);
        (* the cursor still walks its pinned version: Ann's age is the
           original 34, not any of the five committed updates *)
        check_bool "pinned row unchanged" true
          (Table.get first people "AGE" = Value.Int 34);
        let rec drain () =
          match Xdm.Cursor.next cur with Some _ -> drain () | None -> ()
        in
        drain ();
        check_int "exhausting the cursor collects its version" 1
          (Table.live_versions people);
        let c name =
          Option.value ~default:0
            (List.assoc_opt name (Core.Instr.stats instr).Core.Instr.counters)
        in
        check_bool "collections counted" true
          (c Core.Instr.K.mvcc_versions_collected >= 5);
        (* the gauge tracks published versions only — the birth version
           predates the publish lifecycle, so all five publishes have
           been matched by five collections and the gauge is back to 0 *)
        check_int "live gauge balanced after the drain" 0
          (c Core.Instr.K.mvcc_versions_live));
    case "rollback discards the working store and publishes nothing"
      (fun () ->
        let db, people, _ = mk_db () in
        let v0 = Table.current_version people in
        Database.begin_tx db;
        ignore
          (Database.exec db
             (Insert
                {
                  table = "PEOPLE";
                  columns = [ "ID"; "NAME" ];
                  values = [ Value.Int 9; Value.Text "Zoe" ];
                }));
        Database.rollback db;
        check_int "no version published" v0 (Table.current_version people);
        check_int "row count untouched" 2 (Table.row_count people);
        check_bool "write lock released" true
          (fst (Table.lock_info people) = None));
    case "a transaction publishes one version per written table" (fun () ->
        let db, people, _ = mk_db () in
        let v0 = Table.current_version people in
        Database.begin_tx db;
        for i = 0 to 2 do
          ignore
            (Database.exec db
               (Insert
                  {
                    table = "PEOPLE";
                    columns = [ "ID"; "NAME" ];
                    values = [ Value.Int (20 + i); Value.Text "New" ];
                  }))
        done;
        check_int "nothing published before commit" v0
          (Table.current_version people);
        Database.commit db;
        check_int "three statements, one version" (v0 + 1)
          (Table.current_version people);
        check_int "no stray live versions" 1 (Table.live_versions people));
    case "an auto-commit statement that fails publishes nothing" (fun () ->
        let db, _, pets = mk_db () in
        let v0 = Table.current_version pets in
        (match
           Database.exec db
             (Insert
                {
                  table = "PETS";
                  columns = [ "PID"; "OWNER" ];
                  values = [ Value.Int 77; Value.Int 99 ];
                })
         with
        | _ -> Alcotest.fail "fk violation not raised"
        | exception Database.Db_error _ -> ());
        check_int "no version published" v0 (Table.current_version pets);
        check_int "the violating row is not there" 1 (Table.row_count pets);
        check_bool "write lock released" true
          (fst (Table.lock_info pets) = None));
  ]

let suites =
  [
    ("relational.value", value_tests);
    ("relational.pred", pred_tests);
    ("relational.table", table_tests);
    ("relational.mvcc", mvcc_tests);
    ("relational.database", database_tests);
    ("relational.xa", xa_tests);
  ]
