(* The fn:* / xs:* builtin function library. *)

open Util

let string_fn_tests =
  [
    q "concat" "abc" "concat('a', 'b', 'c')";
    q "concat many args with empties" "ab" "concat('a', (), 'b', '')";
    q "string-join" "a-b-c" "string-join(('a', 'b', 'c'), '-')";
    q "string-join empty" "" "string-join((), '-')";
    q "substring from" "world" "substring('hello world', 7)";
    q "substring with length" "ell" "substring('hello', 2, 3)";
    q "substring beyond end" "o" "substring('hello', 5, 10)";
    q "substring zero start clips" "he" "substring('hello', 0, 3)";
    q "string-length" "5" "string-length('hello')";
    q "string-length of empty arg" "0" "string-length(())";
    q "upper and lower" "ABC abc" "concat(upper-case('abc'), ' ', lower-case('ABC'))";
    q "contains" "true" "contains('haystack', 'ays')";
    q "contains empty needle" "true" "contains('x', '')";
    q "starts-with / ends-with" "true true"
      "(starts-with('hello', 'he'), ends-with('hello', 'lo'))";
    q "substring-before" "1999" "substring-before('1999/04/01', '/')";
    q "substring-after" "04/01" "substring-after('1999/04/01', '/')";
    q "substring-before no match" "" "substring-before('abc', 'z')";
    q "normalize-space" "a b c" "normalize-space('  a   b\tc  ')";
    q "translate" "BAr" "translate('bar', 'abc', 'ABC')";
    q "translate drops unmapped" "AC" "translate('ABC', 'B', '')";
    q "string of number" "3.5" "string(3.5)";
    q "string of node" "hi" "string(<a>hi</a>)";
    q "string-to-codepoints" "104 105" "string-to-codepoints('hi')";
    q "codepoints-to-string" "hi" "codepoints-to-string((104, 105))";
  ]

let regex_tests =
  [
    q "matches" "true" "matches('abc123', '[0-9]+')";
    q "matches anchors" "false" "matches('abc', '^b')";
    q "matches flags i" "true" "matches('ABC', 'abc', 'i')";
    q "replace" "a-b-c" "replace('a b c', ' ', '-')";
    q "replace with group refs" "[abc]" "replace('abc', '(.+)', '[$1]')";
    q "tokenize" "John Smith" "string-join(tokenize('John Smith', ' '), ' ')";
    q "tokenize first token" "John" "tokenize('John Smith', ' ')[1]";
    q "tokenize keeps inner empties" "3" "count(tokenize('a,,b', ','))";
    q "tokenize of empty string" "0" "count(tokenize('', ','))";
    q_err "invalid regex" "FORX0002" "matches('x', '(unclosed')";
    q_err "invalid flag" "FORX0001" "matches('x', 'x', 'q')";
  ]

let numeric_fn_tests =
  [
    q "abs" "5 5" "(abs(-5), abs(5))";
    q "floor / ceiling" "1 2" "(floor(1.7), ceiling(1.3))";
    q "round" "2 -2" "(round(1.5), round(-1.7))";
    q "round half toward positive infinity" "-2" "round(-2.5)";
    q "round integer passthrough" "7" "round(7)";
    q "number of bad string is NaN" "NaN" "string(number('abc'))";
    q "number of node" "42" "string(number(<a>42</a>))";
  ]

let sequence_fn_tests =
  [
    q "count" "3" "count((1, 2, 3))";
    q "count empty" "0" "count(())";
    q "empty / exists" "true false" "(empty(()), exists(()))";
    q "distinct-values" "3" "count(distinct-values((1, 2, 2, 3, 1)))";
    q "distinct-values mixes untyped as string" "1"
      "count(distinct-values((fn:data(<a>x</a>), 'x')))";
    q "reverse" "3 2 1" "reverse((1, 2, 3))";
    q "subsequence from" "3 4 5" "subsequence((1,2,3,4,5), 3)";
    q "subsequence with length" "2 3" "subsequence((1,2,3,4), 2, 2)";
    (* the F&O window rule in xs:double arithmetic: fn:round the
       arguments (half toward +INF), never convert positions to int *)
    q "subsequence rounds start half up" "3 4 5"
      "subsequence((1,2,3,4,5), 2.5)";
    q "subsequence rounds start down below half" "2 3 4 5"
      "subsequence((1,2,3,4,5), 2.4)";
    q "subsequence negative half start rounds toward +INF" "1 2"
      "subsequence((1,2,3,4,5), -1.5, 4)";
    q "subsequence zero start keeps all" "1 2 3 4 5"
      "subsequence((1,2,3,4,5), 0)";
    q "subsequence negative start eats into length" "1"
      "subsequence((1,2,3,4,5), -2, 4)";
    q "subsequence NaN start is empty" ""
      "string-join(for $i in subsequence((1,2,3,4,5), xs:double('NaN')) return string($i), ' ')";
    q "subsequence NaN length is empty" ""
      "string-join(for $i in subsequence((1,2,3,4,5), 2, xs:double('NaN')) return string($i), ' ')";
    q "subsequence INF start is empty" ""
      "string-join(for $i in subsequence((1,2,3,4,5), xs:double('INF')) return string($i), ' ')";
    q "subsequence INF length keeps the tail" "1 2 3 4 5"
      "subsequence((1,2,3,4,5), -5, xs:double('INF'))";
    q "subsequence -INF start with INF length is empty (NaN bound)" ""
      "string-join(for $i in subsequence((1,2,3,4,5), -xs:double('INF'), xs:double('INF')) return string($i), ' ')";
    q "subsequence huge start does not overflow" ""
      "string-join(for $i in subsequence((1,2,3,4,5), 1e18) return string($i), ' ')";
    q "subsequence huge negative start with huge length is empty" ""
      "string-join(for $i in subsequence((1,2,3,4,5), -1e18, 1e18) return string($i), ' ')";
    q "subsequence huge length keeps the tail" "2 3 4 5"
      "subsequence((1,2,3,4,5), 2, 1e18)";
    q "insert-before" "1 9 2" "insert-before((1, 2), 2, 9)";
    q "insert-before past end appends" "1 2 9" "insert-before((1, 2), 5, 9)";
    q "remove" "1 3" "remove((1, 2, 3), 2)";
    q "remove out of range is identity" "1 2" "remove((1, 2), 9)";
    q "index-of" "2 4" "index-of(('a','b','c','b'), 'b')";
    q "exactly-one ok" "1" "exactly-one((1))";
    q_err "exactly-one fails" "FORG0005" "exactly-one((1, 2))";
    q "zero-or-one" "" "string-join(zero-or-one(()), '')";
    q_err "zero-or-one fails" "FORG0003" "zero-or-one((1, 2))";
    q_err "one-or-more fails" "FORG0004" "one-or-more(())";
    q "deep-equal on trees" "true"
      "deep-equal(<a><b>1</b></a>, <a><b>1</b></a>)";
    q "deep-equal detects difference" "false"
      "deep-equal(<a><b>1</b></a>, <a><b>2</b></a>)";
    q "deep-equal across kinds" "false" "deep-equal((1), (<a>1</a>))";
  ]

let aggregate_tests =
  [
    q "sum" "6" "sum((1, 2, 3))";
    q "sum empty is zero" "0" "sum(())";
    q "sum over untyped" "3" "sum(fn:data(<a><b>1</b><b>2</b></a>/b))";
    q "avg" "2.5" "avg((1, 2, 3, 4))";
    q "avg empty is empty" "" "avg(())";
    q "min max" "1 9" "(min((3, 1, 9)), max((3, 1, 9)))";
    q "min on strings" "a" "min(('b', 'a', 'c'))";
    q_err "sum of strings" "XPTY0004" "sum(('a', 'b'))";
  ]

let node_fn_tests =
  [
    q "name / local-name / namespace-uri" "p:e e urn:p"
      "declare namespace p = 'urn:p';
       let $e := <p:e xmlns:p='urn:p'/> return (name($e), local-name($e), namespace-uri($e))";
    q "local-name of empty" "" "local-name(())";
    q "node-name returns QName" "true"
      "node-name(<a/>) eq fn:QName('', 'a')";
    q "root" "r" "let $r := <r><a><b/></a></r> return local-name(root(($r//b)[1]))";
    q "data on sequence" "1 2" "data((<a>1</a>, <a>2</a>))";
    q "boolean function" "true false" "(boolean(1), boolean(0))";
    q_err "boolean of two atomics" "FORG0006" "boolean((0, 1))";
  ]

let context_fn_tests =
  [
    q "position in predicate" "b" "local-name((<x><a/><b/></x>)/*[position() eq 2])";
    q "last in predicate" "c" "local-name((<x><a/><b/><c/></x>)/*[last()])";
    case "string() uses context item" (fun () ->
        check_string "ctx" "hello"
          (xq
             ~context_item:(Core.Xdm.Item.Atomic (Core.Xdm.Atomic.String "hello"))
             "string()"));
    q_err "string() without context" "XPDY0002" "string()";
    q_err "position outside focus" "XPDY0002" "position()";
  ]

let error_trace_tests =
  [
    q_err "fn:error default code" "FOER0000" "error()";
    q_err "fn:error with QName" "E1" "error(xs:QName('E1'))";
    q_err "fn:error with message" "OOPS" "error(xs:QName('OOPS'), 'something')";
    case "fn:error message is preserved" (fun () ->
        match xq "error(xs:QName('X'), 'the message')" with
        | _ -> Alcotest.fail "expected error"
        | exception Core.Xdm.Item.Error { message; _ } ->
          check_string "msg" "the message" message);
    case "fn:error diagnostic items are carried" (fun () ->
        match xq "error(xs:QName('X'), 'm', (1, 2, 3))" with
        | _ -> Alcotest.fail "expected error"
        | exception Core.Xdm.Item.Error { items; _ } ->
          check_int "items" 3 (List.length items));
    case "fn:trace passes value through and logs" (fun () ->
        let engine = Core.Xquery.Engine.create () in
        let logged = ref [] in
        let result =
          Core.Xdm.Xml_serialize.seq_to_string
            (Core.Xquery.Engine.eval_string
               ~opts:
                 {
                   Core.Xquery.Engine.default_run_opts with
                   trace = Some (fun m -> logged := m :: !logged);
                 }
               engine "trace((1, 2), 'label')")
        in
        check_string "value" "1 2" result;
        check_bool "logged" true
          (List.exists (fun m -> m = "label: 1 2") !logged));
  ]

let doc_tests =
  [
    case "fn:doc resolves registered documents" (fun () ->
        let engine = Core.Xquery.Engine.create () in
        Core.Xquery.Engine.register_doc engine "orders.xml"
          (Core.Xdm.Xml_parse.parse "<orders><o id='1'/><o id='2'/></orders>");
        check_string "doc" "2"
          (Core.Xdm.Xml_serialize.seq_to_string
             (Core.Xquery.Engine.eval_string engine
                "count(doc('orders.xml')/orders/o)")));
    case "doc-available" (fun () ->
        let engine = Core.Xquery.Engine.create () in
        Core.Xquery.Engine.register_doc engine "x" (Core.Xdm.Xml_parse.parse "<x/>");
        check_string "avail" "true false"
          (Core.Xdm.Xml_serialize.seq_to_string
             (Core.Xquery.Engine.eval_string engine
                "(doc-available('x'), doc-available('y'))")));
    q_err "missing document" "FODC0002" "doc('nope.xml')";
  ]

let constructor_fn_tests =
  [
    q "xs:integer" "5" "xs:integer(' 5 ')";
    q "xs:double from INF" "INF" "string(xs:double('INF'))";
    q "xs:boolean" "true" "string(xs:boolean('1'))";
    q "xs:date" "2007-12-01" "string(xs:date('2007-12-01'))";
    q "xs:string from number" "42" "xs:string(42)";
    q "constructor of empty is empty" "0" "count(xs:integer(()))";
    q "QName accessors" "b urn:a"
      "(local-name-from-QName(fn:QName('urn:a', 'p:b')), namespace-uri-from-QName(fn:QName('urn:a', 'p:b')))";
    q_err "xs:integer invalid" "FORG0001" "xs:integer('4.5x')";
  ]

let suites =
  [
    ("fn.strings", string_fn_tests);
    ("fn.regex", regex_tests);
    ("fn.numeric", numeric_fn_tests);
    ("fn.sequences", sequence_fn_tests);
    ("fn.aggregates", aggregate_tests);
    ("fn.nodes", node_fn_tests);
    ("fn.context", context_fn_tests);
    ("fn.error-trace", error_trace_tests);
    ("fn.doc", doc_tests);
    ("fn.xs-constructors", constructor_fn_tests);
  ]
