(* The instrumentation subsystem: counter/timer bookkeeping on the
   handle itself, span emission and nesting through both sinks, and the
   counters the engine components report on known workloads. *)

open Util
open Core
open Core.Xdm
module FC = Fixtures.Customer_profile

(* crude JSON-line field extraction — enough to check the hand-emitted
   span objects without a JSON parser dependency *)
let field line name =
  let needle = Printf.sprintf "\"%s\":" name in
  let nl = String.length needle and ll = String.length line in
  let rec find i =
    if i + nl > ll then None
    else if String.sub line i nl = needle then Some (i + nl)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < ll && (match line.[!stop] with ',' | '}' -> false | _ -> true)
    do
      incr stop
    done;
    Some (String.sub line start (!stop - start))

let int_field line name =
  match field line name with
  | Some v -> int_of_string v
  | None -> Alcotest.failf "field %s missing in %s" name line

let str_field line name =
  match field line name with
  | Some v when String.length v >= 2 -> String.sub v 1 (String.length v - 2)
  | _ -> Alcotest.failf "string field %s missing in %s" name line

(* missing = never bumped = zero *)
let counter stats name =
  Option.value ~default:0 (List.assoc_opt name stats.Instr.counters)

let handle_tests =
  [
    case "counters accumulate in first-seen order" (fun () ->
        let i = Instr.create () in
        Instr.enable i;
        Instr.bump i "b.second";
        Instr.bump i ~n:3 "a.first";
        Instr.bump i "b.second";
        check_bool "order" true
          ((Instr.stats i).Instr.counters = [ ("b.second", 2); ("a.first", 3) ]));
    case "bump is a no-op while disabled" (fun () ->
        let i = Instr.create () in
        Instr.bump i "x";
        check_int "nothing recorded" 0
          (List.length (Instr.stats i).Instr.counters);
        Instr.enable i;
        Instr.disable i;
        Instr.bump i "x";
        check_int "still nothing" 0 (List.length (Instr.stats i).Instr.counters));
    case "the shared disabled handle refuses enable" (fun () ->
        check_bool "off" false (Instr.enabled Instr.disabled);
        match Instr.enable Instr.disabled with
        | () -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    case "since computes a per-query delta" (fun () ->
        let i = Instr.create () in
        Instr.enable i;
        Instr.bump i ~n:5 "q";
        let before = Instr.stats i in
        Instr.bump i ~n:2 "q";
        Instr.bump i "fresh";
        let d = Instr.since i before in
        check_int "existing counter delta" 2 (counter d "q");
        check_int "counter born after the snapshot" 1 (counter d "fresh"));
    case "reset zeroes values but keeps registrations" (fun () ->
        let i = Instr.create () in
        Instr.enable i;
        Instr.bump i ~n:9 "k";
        Instr.reset i;
        check_bool "still listed, now zero" true
          ((Instr.stats i).Instr.counters = [ ("k", 0) ]));
    case "preregister lists every engine key at zero" (fun () ->
        let i = Instr.create () in
        Instr.preregister i;
        let st = Instr.stats i in
        List.iter
          (fun k ->
            check_bool (k ^ " listed") true
              (List.mem_assoc k st.Instr.counters);
            check_int k 0 (counter st k))
          [
            Instr.K.queries_compiled;
            Instr.K.optimizer_joins;
            Instr.K.sql_executed;
            Instr.K.rows_fetched;
            Instr.K.ws_calls;
            Instr.K.sdo_submits;
          ]);
    case "render aligns counters and can omit timers" (fun () ->
        let i = Instr.create () in
        Instr.enable i;
        Instr.bump i ~n:7 "a.count";
        Instr.span i "work" (fun () -> ());
        let full = Instr.render (Instr.stats i) in
        let no_times = Instr.render ~times:false (Instr.stats i) in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
          in
          go 0
        in
        check_bool "counter line" true (contains full "a.count");
        check_bool "value" true (contains full "7");
        check_bool "timer line" true (contains full "time.work.ms");
        check_bool "timers omitted" false (contains no_times "time.work.ms"));
    case "span durations accumulate into timers" (fun () ->
        let i = Instr.create () in
        Instr.enable i;
        Instr.span i "w" (fun () -> ());
        Instr.span i "w" (fun () -> ());
        match (Instr.stats i).Instr.timers with
        | [ ("w", ms) ] -> check_bool "non-negative" true (ms >= 0.)
        | l -> Alcotest.failf "expected one timer, got %d" (List.length l));
    case "noting requires both enablement and a live sink" (fun () ->
        let i = Instr.create () in
        check_bool "disabled" false (Instr.noting i);
        Instr.enable i;
        check_bool "null sink" false (Instr.noting i);
        Instr.set_sink i (Instr.Text ignore);
        check_bool "enabled + text" true (Instr.noting i));
  ]

let span_tests =
  [
    case "json spans carry id/parent/depth nesting" (fun () ->
        let lines = ref [] in
        let i = Instr.create ~sink:(Instr.Json (fun l -> lines := l :: !lines)) () in
        Instr.enable i;
        Instr.span i "outer" (fun () ->
            Instr.span i "inner" (fun () -> ()));
        match List.rev !lines with
        | [ inner; outer ] ->
          (* children complete — and print — before their parents *)
          check_string "inner first" "inner" (str_field inner "name");
          check_string "outer second" "outer" (str_field outer "name");
          check_int "outer is a root" 0 (int_field outer "parent");
          check_int "outer depth" 0 (int_field outer "depth");
          check_int "inner nests under outer" (int_field outer "id")
            (int_field inner "parent");
          check_int "inner depth" 1 (int_field inner "depth")
        | l -> Alcotest.failf "expected 2 span lines, got %d" (List.length l));
    case "json lines are well-formed objects" (fun () ->
        let lines = ref [] in
        let i = Instr.create ~sink:(Instr.Json (fun l -> lines := l :: !lines)) () in
        Instr.enable i;
        Instr.span i "s" ~attrs:[ ("k", "va\"lue") ] (fun () ->
            Instr.note i "with \"quotes\" and\nnewline");
        List.iter
          (fun l ->
            check_bool "starts as object" true
              (String.length l > 8 && String.sub l 0 8 = {|{"type":|});
            check_bool "ends closed" true (l.[String.length l - 1] = '}');
            (* escaped payloads must not leave raw quotes or newlines *)
            String.iteri
              (fun idx c ->
                if c = '\n' then Alcotest.fail "raw newline in json line";
                if c = '"' && idx > 0 && l.[idx - 1] <> '\\' then ()
                else ())
              l)
          !lines;
        check_int "note + span" 2 (List.length !lines));
    case "spans close and pop on exceptions" (fun () ->
        let lines = ref [] in
        let i = Instr.create ~sink:(Instr.Json (fun l -> lines := l :: !lines)) () in
        Instr.enable i;
        (try Instr.span i "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        Instr.span i "after" (fun () -> ());
        match List.rev !lines with
        | [ boom; after ] ->
          check_string "failed span emitted" "boom" (str_field boom "name");
          check_int "stack popped: next span is a root" 0
            (int_field after "depth")
        | l -> Alcotest.failf "expected 2 lines, got %d" (List.length l));
    case "text sink indents by depth and closes children first" (fun () ->
        let lines = ref [] in
        let i = Instr.create ~sink:(Instr.Text (fun l -> lines := l :: !lines)) () in
        Instr.enable i;
        Instr.span i "outer" (fun () ->
            Instr.span i "inner" (fun () -> Instr.note i "hello"));
        match List.rev !lines with
        | [ note; inner; outer ] ->
          check_bool "note at depth 2" true
            (String.length note > 4 && String.sub note 0 4 = "    ");
          check_bool "inner at depth 1" true
            (String.length inner > 2 && String.sub inner 0 2 = "  ");
          check_bool "outer at depth 0" true (outer.[0] <> ' ')
        | l -> Alcotest.failf "expected 3 lines, got %d" (List.length l));
    case "a session query runs inside nested compile/run spans" (fun () ->
        let lines = ref [] in
        let instr =
          Instr.create ~sink:(Instr.Json (fun l -> lines := l :: !lines)) ()
        in
        Instr.enable instr;
        let s = Xqse.Session.create ~instr () in
        let r = Xqse.Session.exec s "1 + 2" in
        check_string "value" "3" (Xml_serialize.seq_to_string r.Xqse.Session.r_value);
        let spans =
          List.filter (fun l -> str_field l "type" = "span") (List.rev !lines)
        in
        let find name =
          match List.find_opt (fun l -> str_field l "name" = name) spans with
          | Some l -> l
          | None -> Alcotest.failf "no %s span" name
        in
        let query = find "query" and compile = find "compile" and run = find "run" in
        check_int "query is a root span" 0 (int_field query "parent");
        check_int "compile nests under query" (int_field query "id")
          (int_field compile "parent");
        check_int "run nests under query" (int_field query "id")
          (int_field run "parent"));
  ]

let engine_counter_tests =
  [
    case "compilation reports queries.compiled and optimizer counters" (fun () ->
        let instr = Instr.create () in
        Instr.enable instr;
        let e = Xquery.Engine.create ~instr () in
        ignore (Xquery.Engine.compile e "1 + 2 * 3");
        let st = Instr.stats instr in
        check_int "queries.compiled" 1 (counter st Instr.K.queries_compiled);
        check_bool "optimizer.folded" true
          (counter st Instr.K.optimizer_folded > 0));
    case "join detection is counted per compile" (fun () ->
        let instr = Instr.create () in
        Instr.enable instr;
        let e = Xquery.Engine.create ~instr () in
        ignore
          (Xquery.Engine.compile e
             "for $a in (<r><k>1</k></r>, <r><k>2</k></r>)
              for $b in (<s><k>2</k></s>)
              where $a/k eq $b/k
              return ($a, $b)");
        check_bool "optimizer.joins" true
          (counter (Instr.stats instr) Instr.K.optimizer_joins > 0));
    case "xqse.statements counts statement executions per iteration" (fun () ->
        let run n =
          let instr = Instr.create () in
          Instr.enable instr;
          let s = Xqse.Session.create ~instr () in
          ignore
            (Xqse.Session.eval s
               (Printf.sprintf
                  "{ declare $acc := 0; iterate $i over 1 to %d { set $acc := $acc + $i; } return value $acc; }"
                  n));
          counter (Instr.stats instr) Instr.K.xqse_statements
        in
        let five = run 5 and ten = run 10 in
        check_bool "statements were counted" true (five > 0);
        (* the loop body is one [set] statement per iteration *)
        check_int "5 extra iterations = 5 extra statements" 5 (ten - five));
    case "Session.exec returns the per-query stats delta" (fun () ->
        let instr = Instr.create () in
        Instr.enable instr;
        let s = Xqse.Session.create ~instr () in
        ignore (Xqse.Session.exec s "1 + 1");
        let r = Xqse.Session.exec s "2 + 2" in
        check_string "value" "4"
          (Xml_serialize.seq_to_string r.Xqse.Session.r_value);
        (* a delta, not the running total: exactly this query's compile *)
        check_int "one compile in the delta" 1
          (counter r.Xqse.Session.r_stats Instr.K.queries_compiled));
  ]

let platform_counter_tests =
  [
    case "web service calls are counted across the read method" (fun () ->
        let instr = Instr.create () in
        Instr.enable instr;
        let env = FC.make ~customers:2 ~instr () in
        ignore
          (Xqse.Session.eval
             (Aldsp.Dataspace.session env.FC.ds)
             "count(profile:getProfile())");
        let st = Instr.stats instr in
        (* 007 plus C1, C2: one rating lookup per customer *)
        check_int "ws.calls" 3 (counter st Instr.K.ws_calls);
        check_int "no faults" 0 (counter st Instr.K.ws_faults);
        check_bool "rows were scanned" true
          (counter st Instr.K.rows_scanned > 0);
        check_bool "rows were fetched" true
          (counter st Instr.K.rows_fetched > 0));
    case "web service faults are counted" (fun () ->
        let instr = Instr.create () in
        Instr.enable instr;
        let env = FC.make ~customers:1 ~instr () in
        Webservice.inject_fault_next env.FC.ws ~message:"down";
        (try
           ignore
             (Xqse.Session.eval
                (Aldsp.Dataspace.session env.FC.ds)
                "profile:getProfile()")
         with _ -> ());
        check_bool "ws.faults" true
          (counter (Instr.stats instr) Instr.K.ws_faults > 0));
    case "submit reports sdo and sql counters" (fun () ->
        let instr = Instr.create () in
        Instr.enable instr;
        let env = FC.make ~customers:1 ~instr () in
        let dg = FC.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        let before = Instr.stats instr in
        let r = Aldsp.Dataspace.submit env.FC.ds env.FC.svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        let d = Instr.since instr before in
        check_int "sdo.submits" 1 (counter d Instr.K.sdo_submits);
        check_int "sdo.statements" 1 (counter d Instr.K.sdo_statements);
        check_bool "sql.generated" true (counter d Instr.K.sql_generated > 0);
        check_bool "sql.executed" true (counter d Instr.K.sql_executed > 0));
    case "a late-enabled handle still hears registered components" (fun () ->
        (* the shared-handle contract: components wired while the handle
           was off report once it is enabled *)
        let instr = Instr.create () in
        let env = FC.make ~customers:1 ~instr () in
        Instr.enable instr;
        ignore
          (Xqse.Session.eval
             (Aldsp.Dataspace.session env.FC.ds)
             "count(profile:getProfile())");
        check_bool "ws.calls heard after enable" true
          (counter (Instr.stats instr) Instr.K.ws_calls > 0));
  ]

let domain_tests =
  [
    case "an increment storm from two domains loses nothing" (fun () ->
        (* the counters are atomics: 2 x 200k concurrent bumps (plus
           interleaved multi-increments and a timer) must land exactly *)
        let instr = Instr.create () in
        Instr.enable instr;
        let storm () =
          for i = 1 to 200_000 do
            Instr.bump instr "storm.count";
            if i mod 1000 = 0 then begin
              Instr.bump ~n:5 instr "storm.batch";
              Instr.time instr "storm.ms" (fun () -> ())
            end
          done
        in
        let d = Domain.spawn storm in
        storm ();
        Domain.join d;
        let st = Instr.stats instr in
        let c name =
          Option.value ~default:0 (List.assoc_opt name st.Instr.counters)
        in
        check_int "storm.count" 400_000 (c "storm.count");
        check_int "storm.batch" 2_000 (c "storm.batch");
        check_bool "storm.ms timer exists and is sane" true
          (match List.assoc_opt "storm.ms" st.Instr.timers with
          | Some t -> t >= 0.
          | None -> false));
    case "spans stay balanced per domain" (fun () ->
        (* each domain gets its own span stack: concurrent spans must
           not corrupt each other's nesting *)
        let instr = Instr.create () in
        Instr.enable instr;
        let spin () =
          for _ = 1 to 1_000 do
            Instr.span instr "work" (fun () ->
                Instr.span instr "inner" (fun () -> ()))
          done
        in
        let d = Domain.spawn spin in
        spin ();
        Domain.join d;
        let st = Instr.stats instr in
        check_bool "span timer accumulated" true
          (List.mem_assoc "work" st.Instr.timers
          && List.mem_assoc "inner" st.Instr.timers));
    case "add_stats merges two workers' deltas" (fun () ->
        let a = { Instr.counters = [ ("x", 1); ("y", 2) ]; timers = [ ("t", 1.) ] }
        and b = { Instr.counters = [ ("y", 3); ("z", 4) ]; timers = [ ("t", 2.) ] } in
        let m = Instr.add_stats a b in
        let c name =
          Option.value ~default:0 (List.assoc_opt name m.Instr.counters)
        in
        check_int "x" 1 (c "x");
        check_int "y" 5 (c "y");
        check_int "z" 4 (c "z");
        check_bool "t" true
          (List.assoc_opt "t" m.Instr.timers = Some 3.));
  ]

let suites =
  [
    ("instr.handle", handle_tests);
    ("instr.spans", span_tests);
    ("instr.domains", domain_tests);
    ("instr.engine-counters", engine_counter_tests);
    ("instr.platform-counters", platform_counter_tests);
  ]
