(* Differential testing of the rewrite optimizer: a deterministic corpus
   of generated FLWOR/let/quantified programs, each evaluated with and
   without optimization. Any divergence — different items, or an error on
   one side only — is an optimizer soundness bug. This is the tier-1
   tripwire for scope-analysis regressions: a rewrite pass that breaks
   variable scoping fails here instead of shipping.

   Programs run through two layers: the bare XQuery engine, and the XQSE
   session (whose compile path builds the purity environment from the
   program's own declarations before optimizing) — a session-layer
   regression in environment threading would diverge here even if the
   engine layer stays sound. *)

open Util
open Core

let corpus_size = 500
let corpus_seed = 20260806
let corpus = Fixtures.Gen_xquery.corpus ~seed:corpus_seed corpus_size

(* evaluation outcome: serialized result, or the dynamic error code *)
let outcome f src =
  match f src with
  | v -> Ok v
  | exception Xdm.Item.Error { code; _ } -> Error (Xdm.Qname.to_string code)

let show = function
  | Ok s -> Printf.sprintf "result %S" s
  | Error c -> Printf.sprintf "error %s" c

let agree name src =
  case name (fun () ->
      let unopt = outcome xq_noopt src in
      let opt = outcome xq src in
      if opt <> unopt then
        Alcotest.failf
          "optimizer changed program semantics:\n%s\n  unoptimized: %s\n  optimized:   %s"
          src (show unopt) (show opt);
      (* streaming vs forced-materializing: the cursor pipeline must be
         invisible — same items, same errors, in both optimizer modes *)
      let mat = outcome xq_nostream src in
      if mat <> opt then
        Alcotest.failf
          "streaming changed program semantics:\n%s\n  materializing: %s\n  streaming:     %s"
          src (show mat) (show opt);
      let mat_noopt = outcome xq_noopt_nostream src in
      if mat_noopt <> unopt then
        Alcotest.failf
          "streaming changed program semantics (unoptimized):\n\
           %s\n  materializing: %s\n  streaming:     %s"
          src (show mat_noopt) (show unopt);
      (* compiled vs interpreted: closure-compiled plans must be
         invisible — same items, same errors *)
      let interp = outcome xq_noplans src in
      if interp <> opt then
        Alcotest.failf
          "closure compilation changed program semantics:\n\
           %s\n  interpreted: %s\n  compiled:    %s"
          src (show interp) (show opt))

(* Session-level agreement: one shared session per mode (program
   declarations compile against copies, so corpus programs cannot leak
   into each other), forced lazily so suite construction stays cheap. *)
let session_opt = lazy (Xqse.Session.create ())
let session_noopt = lazy (Xqse.Session.create ~optimize:false ())

let session_nostream =
  lazy
    (Xqse.Session.create
       ~config:{ Xqse.Session.default_config with streaming = false }
       ())

(* interpreted XQSE: plans off disables both the session plan cache and
   the compiled statement path, so every program runs through the
   tree-walking interpreter *)
let session_noplans =
  lazy
    (Xqse.Session.create
       ~config:{ Xqse.Session.default_config with plans = false }
       ())

let agree_session name src =
  case name (fun () ->
      let eval s src = Xqse.Session.eval_to_string (Lazy.force s) src in
      let unopt = outcome (eval session_noopt) src in
      let opt = outcome (eval session_opt) src in
      if opt <> unopt then
        Alcotest.failf
          "optimizer changed program semantics (session layer):\n%s\n  unoptimized: %s\n  optimized:   %s"
          src (show unopt) (show opt);
      let mat = outcome (eval session_nostream) src in
      if mat <> opt then
        Alcotest.failf
          "streaming changed program semantics (session layer):\n\
           %s\n  materializing: %s\n  streaming:     %s"
          src (show mat) (show opt);
      let interp = outcome (eval session_noplans) src in
      if interp <> opt then
        Alcotest.failf
          "closure compilation changed program semantics (session layer):\n\
           %s\n  interpreted: %s\n  compiled:    %s"
          src (show interp) (show opt);
      (* the first [opt] evaluation populated the plan cache — replaying
         the same program must hit it and agree (warm vs cold) *)
      let warm = outcome (eval session_opt) src in
      if warm <> opt then
        Alcotest.failf
          "warm plan-cache replay changed program semantics:\n\
           %s\n  cold: %s\n  warm: %s"
          src (show opt) (show warm))

let generated_tests =
  List.mapi (fun i src -> agree (Printf.sprintf "generated %03d" i) src) corpus

let generated_session_tests =
  List.mapi
    (fun i src -> agree_session (Printf.sprintf "session %03d" i) src)
    corpus

(* Directed cases: known-dangerous shapes kept verbatim so a regression
   names the construct, not just a corpus index. *)
let directed =
  [
    (* let-alias capture under a for rebinding the aliased variable *)
    "let $x := 99 return (let $y := $x for $x in (1,2) return $y)";
    (* the same, with the capturing binder in a quantified expression *)
    "let $x := 99 return (let $y := $x return (some $x in (1,2) satisfies $x eq $y))";
    (* capture by a positional variable *)
    "let $p := 7 return (let $y := $p for $x at $p in (4,5) return $y * $x)";
    (* capture by a second binding in the same for clause *)
    "let $x := 3 return (let $y := $x for $a in (1,2), $x in (8,9) return $y + $a)";
    (* capture by a typeswitch case variable *)
    "let $x := 1 return (let $y := $x return (typeswitch (5) case $x as xs:integer return $y default return 0))";
    (* join detection must not key on a rebound variable *)
    "for $a in (1,2) for $b in (2,3) let $b := 2 where $b eq $a return ($a, $b)";
    (* probe variable rebound between the for and the where *)
    "for $a in (1,2) for $b in (2,3) let $a := 3 where $b eq $a return ($a, $b)";
    (* pushdown must rebind a shifted-focus variable, not capture it *)
    "for $x in (1,2,3) where count((1,2)[. le $x]) eq 2 return $x";
    (* alias chains across clauses *)
    "let $x := 5 let $y := $x let $x := 2 return ($y, $x)";
    (* inlining through a where that mentions both generations of $x *)
    "let $x := 1 return (for $y in (1,2) let $z := $x for $x in (3,4) where $x gt $z return ($x, $z))";
    (* a bare numeric where is an effective-boolean-value test, not a
       positional predicate: pushing it unwrapped changed 2 3 into () *)
    "for $x in (2,3) where $x return $x";
    (* a fallible conjunct must not jump an unpushable where: evaluated
       eagerly on the extra tuples it raises FOAR0001 (1 idiv 0) *)
    "for $y in (3,4) for $x in (0,1) where ($y + $x eq 9) and (1 idiv $x ge 0) \
     return $x";
    (* a let bound to a constructor must keep node identity: inlining it
       would construct a fresh node per use and double the union count *)
    "let $x := <a/> for $i in (1,2) return count($x | $x)";
    (* a single-use computed let in head position — the shape the
       cost-based inliner fires on — must still agree *)
    "let $x := count((1 to 5)) return $x + 1";
    (* a context-dependent let value must not move into a shifted focus *)
    "for $n in (<a><b/><b/></a>)/b let $p := position() return (1,2)[. eq $p]";
  ]

let directed_tests =
  List.mapi (fun i src -> agree (Printf.sprintf "directed %02d" i) src) directed

let directed_session_tests =
  List.mapi
    (fun i src -> agree_session (Printf.sprintf "directed session %02d" i) src)
    directed

(* Rewrite statistics for one corpus program, through the same
   entry point the engine uses. *)
let stats_of src =
  let e =
    Xquery.Parser.parse_expression (Xquery.Context.default_static ()) src
  in
  snd (Xquery.Optimizer.optimize_with_stats e)

let count_where pred l = List.length (List.filter pred l)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let meta_tests =
  [
    case "corpus is deterministic" (fun () ->
        check_bool "same corpus for same seed" true
          (corpus = Fixtures.Gen_xquery.corpus ~seed:corpus_seed corpus_size));
    case "corpus is large enough" (fun () ->
        check_bool "\xe2\x89\xa5 500 generated programs" true (corpus_size >= 500));
    case "generated programs exercise shadowing" (fun () ->
        (* the generator's reason to exist: rebinding must be common *)
        let occurrences needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec go i acc =
            if i + nl > hl then acc
            else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
            else go (i + 1) acc
          in
          go 0 0
        in
        let binder_count src v =
          (* every binding site renders as one of these prefixes *)
          occurrences (Printf.sprintf "for $%s" v) src
          + occurrences (Printf.sprintf "let $%s := " v) src
          + occurrences (Printf.sprintf "some $%s in" v) src
          + occurrences (Printf.sprintf "every $%s in" v) src
          + occurrences (Printf.sprintf "at $%s" v) src
        in
        let shadowing =
          count_where
            (fun src ->
              List.exists (fun v -> binder_count src v >= 2) [ "x"; "y"; "z" ])
            corpus
        in
        check_bool
          (Printf.sprintf "%d/%d programs rebind a variable" shadowing
             (List.length corpus))
          true
          (shadowing * 4 >= List.length corpus));
    case "generated programs include typeswitch" (fun () ->
        let n = count_where (contains "typeswitch") corpus in
        check_bool
          (Printf.sprintf "%d/%d programs contain a typeswitch" n
             (List.length corpus))
          true (n >= 10));
    case "generated programs include transform expressions" (fun () ->
        let n = count_where (contains "copy $") corpus in
        check_bool
          (Printf.sprintf "%d/%d programs contain a copy/modify/return" n
             (List.length corpus))
          true (n >= 10));
    case "generated programs trigger join detection" (fun () ->
        (* the whole point of the join-shaped template: detect_joins must
           fire on generated input, not just on hand-written tests *)
        let n =
          count_where (fun p -> (stats_of p).Xquery.Optimizer.joins > 0) corpus
        in
        check_bool
          (Printf.sprintf "%d/%d programs rewrite into a hash join" n
             (List.length corpus))
          true (n >= 10));
    case "generated programs trigger purity-gated inlining" (fun () ->
        (* the single-use computed-let template must actually reach the
           cost-based inliner, so corpus agreement proves it sound *)
        let n =
          count_where
            (fun p -> (stats_of p).Xquery.Optimizer.inlined_pure > 0)
            corpus
        in
        check_bool
          (Printf.sprintf "%d/%d programs fire a purity-gated inline" n
             (List.length corpus))
          true (n >= 20));
    case "generated programs exercise subsequence coercion corners" (fun () ->
        (* the window-rule shapes must actually appear: fn:subsequence
           calls overall, and the adversarial non-integer bounds (NaN,
           infinities, fractional, out-of-int-range) in particular *)
        let n = count_where (contains "subsequence(") corpus in
        let adversarial =
          count_where
            (fun p ->
              List.exists
                (fun needle -> contains needle p)
                [ "NaN"; "INF"; ".5"; ".25"; "1e18" ])
            corpus
        in
        check_bool
          (Printf.sprintf "%d/%d call subsequence, %d with adversarial bounds"
             n (List.length corpus) adversarial)
          true
          (n >= 20 && adversarial >= 10));
    case "generated programs trigger focus-shift pushdown" (fun () ->
        let n =
          count_where
            (fun p -> (stats_of p).Xquery.Optimizer.pushed_shifted > 0)
            corpus
        in
        check_bool
          (Printf.sprintf "%d/%d programs fire a focus-shifted pushdown" n
             (List.length corpus))
          true (n >= 20));
  ]

let suites =
  [
    ("differential", meta_tests @ directed_tests @ generated_tests);
    ("differential-session", directed_session_tests @ generated_session_tests);
  ]
