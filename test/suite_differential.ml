(* Differential testing of the rewrite optimizer: a deterministic corpus
   of generated FLWOR/let/quantified programs, each evaluated with and
   without optimization. Any divergence — different items, or an error on
   one side only — is an optimizer soundness bug. This is the tier-1
   tripwire for scope-analysis regressions: a rewrite pass that breaks
   variable scoping fails here instead of shipping. *)

open Util
open Core

let corpus_size = 250
let corpus_seed = 20260806

(* evaluation outcome: serialized result, or the dynamic error code *)
let outcome f src =
  match f src with
  | v -> Ok v
  | exception Xdm.Item.Error { code; _ } -> Error (Xdm.Qname.to_string code)

let show = function
  | Ok s -> Printf.sprintf "result %S" s
  | Error c -> Printf.sprintf "error %s" c

let agree name src =
  case name (fun () ->
      let unopt = outcome xq_noopt src in
      let opt = outcome xq src in
      if opt <> unopt then
        Alcotest.failf
          "optimizer changed program semantics:\n%s\n  unoptimized: %s\n  optimized:   %s"
          src (show unopt) (show opt))

let generated_tests =
  List.mapi
    (fun i src -> agree (Printf.sprintf "generated %03d" i) src)
    (Fixtures.Gen_xquery.corpus ~seed:corpus_seed corpus_size)

(* Directed cases: known-dangerous shapes kept verbatim so a regression
   names the construct, not just a corpus index. *)
let directed =
  [
    (* let-alias capture under a for rebinding the aliased variable *)
    "let $x := 99 return (let $y := $x for $x in (1,2) return $y)";
    (* the same, with the capturing binder in a quantified expression *)
    "let $x := 99 return (let $y := $x return (some $x in (1,2) satisfies $x eq $y))";
    (* capture by a positional variable *)
    "let $p := 7 return (let $y := $p for $x at $p in (4,5) return $y * $x)";
    (* capture by a second binding in the same for clause *)
    "let $x := 3 return (let $y := $x for $a in (1,2), $x in (8,9) return $y + $a)";
    (* capture by a typeswitch case variable *)
    "let $x := 1 return (let $y := $x return (typeswitch (5) case $x as xs:integer return $y default return 0))";
    (* join detection must not key on a rebound variable *)
    "for $a in (1,2) for $b in (2,3) let $b := 2 where $b eq $a return ($a, $b)";
    (* probe variable rebound between the for and the where *)
    "for $a in (1,2) for $b in (2,3) let $a := 3 where $b eq $a return ($a, $b)";
    (* pushdown must not move a variable into a shifted focus *)
    "for $x in (1,2,3) where count((1,2)[. le $x]) eq 2 return $x";
    (* alias chains across clauses *)
    "let $x := 5 let $y := $x let $x := 2 return ($y, $x)";
    (* inlining through a where that mentions both generations of $x *)
    "let $x := 1 return (for $y in (1,2) let $z := $x for $x in (3,4) where $x gt $z return ($x, $z))";
  ]

let directed_tests =
  List.mapi (fun i src -> agree (Printf.sprintf "directed %02d" i) src) directed

let meta_tests =
  [
    case "corpus is deterministic" (fun () ->
        check_bool "same corpus for same seed" true
          (Fixtures.Gen_xquery.corpus ~seed:corpus_seed corpus_size
          = Fixtures.Gen_xquery.corpus ~seed:corpus_seed corpus_size));
    case "corpus is large enough" (fun () ->
        check_bool "\xe2\x89\xa5 200 generated programs" true (corpus_size >= 200));
    case "generated programs exercise shadowing" (fun () ->
        (* the generator's reason to exist: rebinding must be common *)
        let occurrences needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec go i acc =
            if i + nl > hl then acc
            else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
            else go (i + 1) acc
          in
          go 0 0
        in
        let binder_count src v =
          (* every binding site renders as one of these prefixes *)
          occurrences (Printf.sprintf "for $%s" v) src
          + occurrences (Printf.sprintf "let $%s := " v) src
          + occurrences (Printf.sprintf "some $%s in" v) src
          + occurrences (Printf.sprintf "every $%s in" v) src
          + occurrences (Printf.sprintf "at $%s" v) src
        in
        let progs = Fixtures.Gen_xquery.corpus ~seed:corpus_seed corpus_size in
        let shadowing =
          List.filter
            (fun src ->
              List.exists (fun v -> binder_count src v >= 2) [ "x"; "y"; "z" ])
            progs
        in
        check_bool
          (Printf.sprintf "%d/%d programs rebind a variable"
             (List.length shadowing) (List.length progs))
          true
          (List.length shadowing * 4 >= List.length progs));
    case "generated programs include typeswitch" (fun () ->
        let progs = Fixtures.Gen_xquery.corpus ~seed:corpus_seed corpus_size in
        let has_ts src =
          let needle = "typeswitch" in
          let nl = String.length needle and hl = String.length src in
          let rec go i =
            i + nl <= hl && (String.sub src i nl = needle || go (i + 1))
          in
          go 0
        in
        let n = List.length (List.filter has_ts progs) in
        check_bool
          (Printf.sprintf "%d/%d programs contain a typeswitch" n
             (List.length progs))
          true (n >= 10));
    case "generated programs trigger join detection" (fun () ->
        (* the whole point of the join-shaped template: detect_joins must
           fire on generated input, not just on hand-written tests *)
        let progs = Fixtures.Gen_xquery.corpus ~seed:corpus_seed corpus_size in
        let joins_in src =
          let e =
            Xquery.Parser.parse_expression
              (Xquery.Context.default_static ())
              src
          in
          let _, st = Xquery.Optimizer.optimize_with_stats e in
          st.Xquery.Optimizer.joins
        in
        let n = List.length (List.filter (fun p -> joins_in p > 0) progs) in
        check_bool
          (Printf.sprintf "%d/%d programs rewrite into a hash join" n
             (List.length progs))
          true (n >= 10));
  ]

let suites =
  [ ("differential", meta_tests @ directed_tests @ generated_tests) ]
