(* The concurrent query server: worker-pool correctness under
   deterministic seeds, snapshot-read isolation between concurrent
   reads and submits, and the cross-database atomicity invariant under
   chaos with multiple workers. *)

open Core
open Util
module FC = Fixtures.Customer_profile
module R = Relational
module Pool = Server.Pool
module Workload = Server.Workload

let value_at tbl pk col =
  match R.Table.find_pk tbl pk with
  | Some row -> R.Table.get row tbl col
  | None -> R.Value.Null

(* the two cells every submit rewrites as a matched pair, one per
   database — 007's last name in db1, card 900001's brand in db2 *)
let lastname env = value_at env.FC.customer [ R.Value.Text "007" ] "LAST_NAME"

let brand env =
  value_at env.FC.credit_card [ R.Value.Int 900001 ] "CC_BRAND"

let text = function R.Value.Text s -> s | v -> R.Value.to_string v

let suffix ~prefix s =
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

(* a consistent pair is (Name<k>, BRAND<k>) for one k, or the seeded
   baseline on both sides — anything else is a torn read or a partial
   commit *)
let pair_consistent ~baseline (ln, br) =
  baseline = (ln, br)
  ||
  match (suffix ~prefix:"Name" ln, suffix ~prefix:"BRAND" br) with
  | Some k1, Some k2 -> k1 = k2
  | _ -> false

let submit_pair env k =
  let dg = FC.get_profile_by_id env "007" in
  Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] (Printf.sprintf "Name%d" k);
  Sdo.set_leaf dg 1
    [ ("CreditCards", 1); ("CREDIT_CARD", 1); ("BRAND", 1) ]
    (Printf.sprintf "BRAND%d" k);
  (Aldsp.Dataspace.submit env.FC.ds env.FC.svc dg).Aldsp.Dataspace.sr_committed

(* concurrent submits to the same customer race at the optimistic-
   concurrency check (the read runs against a snapshot, unlocked) —
   like any OCC client, re-read and retry on conflict *)
let rec submit_pair_retry ?(tries = 10) env k =
  submit_pair env k
  || tries > 1
     && submit_pair_retry ~tries:(tries - 1) env k

(* one consistent cut of the cross-database pair: both cells read from
   a single pinned snapshot, so a rival submit publishing between the
   two reads cannot fake a torn observation *)
let snapshot_pair env =
  let snap = R.Table.snapshot [ env.FC.customer; env.FC.credit_card ] in
  Fun.protect ~finally:(fun () -> R.Table.release snap) @@ fun () ->
  let v tbl pk col =
    match R.Table.snapshot_find_pk snap tbl pk with
    | Some row -> R.Table.get row tbl col
    | None -> R.Value.Null
  in
  ( text (v env.FC.customer [ R.Value.Text "007" ] "LAST_NAME"),
    text (v env.FC.credit_card [ R.Value.Int 900001 ] "CC_BRAND") )

let pair_query =
  {|let $p := profile:getProfileById("007")
    return fn:concat($p/LAST_NAME, "|",
                     ($p/CreditCards/CREDIT_CARD)[1]/BRAND)|}

let split_pair s =
  match String.index_opt s '|' with
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> (s, "")

let pool_tests =
  [
    case "percentiles are nearest-rank" (fun () ->
        let a = Array.init 100 (fun i -> float_of_int (i + 1)) in
        check_bool "p50" true (Pool.percentile a 50. = 50.);
        check_bool "p95" true (Pool.percentile a 95. = 95.);
        check_bool "p99" true (Pool.percentile a 99. = 99.);
        check_bool "empty" true (Pool.percentile [||] 50. = 0.));
    case "sequential pool drains every job in order" (fun () ->
        let env = FC.make ~customers:2 () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let order = ref [] in
        let job i =
          {
            Pool.j_kind = Pool.Read;
            j_label = Printf.sprintf "j%d" i;
            j_arrival_ms = 0.;
            j_deadline_ms = None;
            j_run = (fun _ -> order := i :: !order);
          }
        in
        let rp = Pool.run ~workers:1 ~session:sess (List.init 5 job) in
        check_int "all ok" 5 rp.Pool.r_ok;
        check_bool "list order" true (List.rev !order = [ 0; 1; 2; 3; 4 ]));
    case "job exceptions are counted, not fatal" (fun () ->
        let env = FC.make ~customers:1 () in
        let instr = Instr.create () in
        Instr.enable instr;
        let template = Aldsp.Dataspace.session env.FC.ds in
        let sess =
          Xqse.Session.with_config template
            { (Xqse.Session.config template) with instr }
        in
        let boom =
          {
            Pool.j_kind = Pool.Script;
            j_label = "boom";
            j_arrival_ms = 0.;
            j_deadline_ms = None;
            j_run = (fun _ -> failwith "boom");
          }
        and fine =
          {
            Pool.j_kind = Pool.Read;
            j_label = "fine";
            j_arrival_ms = 0.;
            j_deadline_ms = None;
            j_run =
              (fun s -> ignore (Xqse.Session.eval s "count(profile:getProfile())"));
          }
        in
        let rp = Pool.run ~workers:1 ~session:sess [ boom; fine; boom ] in
        check_int "ok" 1 rp.Pool.r_ok;
        check_int "errors reported" 2 (List.length rp.Pool.r_errors);
        let st = Instr.stats instr in
        let c name =
          Option.value ~default:0 (List.assoc_opt name st.Instr.counters)
        in
        check_int "server.jobs" 3 (c Instr.K.server_jobs);
        check_int "server.errors" 2 (c Instr.K.server_errors));
    case "open-loop runs report a latency trajectory" (fun () ->
        let env = FC.make ~customers:2 () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let noop i arrival =
          {
            Pool.j_kind = Pool.Read;
            j_label = Printf.sprintf "j%d" i;
            j_arrival_ms = arrival;
            j_deadline_ms = None;
            j_run = ignore;
          }
        in
        (* 20 arrivals spread over ~95 ms, bucketed into 25 ms windows *)
        let jobs = List.init 20 (fun i -> noop i (float_of_int i *. 5.)) in
        let rp = Pool.run ~workers:2 ~window_ms:25. ~session:sess jobs in
        check_bool "trajectory present" true (rp.Pool.r_trajectory <> []);
        check_int "windows partition the jobs" 20
          (List.fold_left
             (fun acc w -> acc + w.Pool.w_jobs)
             0 rp.Pool.r_trajectory);
        check_bool "windows are ordered" true
          (let froms = List.map (fun w -> w.Pool.w_from_ms) rp.Pool.r_trajectory in
           froms = List.sort compare froms);
        (* closed loop: no arrivals, no trajectory *)
        let closed = List.init 5 (fun i -> noop i 0.) in
        let rp2 = Pool.run ~workers:1 ~session:sess closed in
        check_bool "closed loop has none" true (rp2.Pool.r_trajectory = []));
    case "workload is a pure function of its seed" (fun () ->
        let env = FC.make ~customers:3 () in
        let sig_of js =
          List.map
            (fun j -> (j.Pool.j_label, j.Pool.j_kind, j.Pool.j_arrival_ms))
            js
        in
        let a = Workload.jobs ~rate:500. ~seed:11 ~count:60 env in
        let b = Workload.jobs ~rate:500. ~seed:11 ~count:60 env in
        let c = Workload.jobs ~rate:500. ~seed:12 ~count:60 env in
        check_bool "same seed, same jobs" true (sig_of a = sig_of b);
        check_bool "different seed, different jobs" true (sig_of a <> sig_of c));
    case "concurrent workload run completes clean and counts add up"
      (fun () ->
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let env = FC.make ~customers:3 ~instr () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let jobs = Workload.jobs ~customers:3 ~seed:5 ~count:60 env in
        let rp = Pool.run ~workers:3 ~session:sess jobs in
        check_int "all ok" 60 rp.Pool.r_ok;
        check_bool "throughput positive" true (rp.Pool.r_qps > 0.);
        check_int "kinds partition the jobs" 60
          (List.fold_left (fun a (_, n) -> a + n) 0 rp.Pool.r_by_kind);
        let st = Instr.stats instr in
        let c name =
          Option.value ~default:0 (List.assoc_opt name st.Instr.counters)
        in
        check_int "server.jobs counted across domains" 60
          (c Instr.K.server_jobs);
        check_int "no server errors" 0 (c Instr.K.server_errors);
        check_int "submits counted" (List.assoc "submit" rp.Pool.r_by_kind)
          (c Instr.K.server_submits));
  ]

let isolation_tests =
  [
    case "readers never see half a cross-database submit" (fun () ->
        (* submits rewrite (LAST_NAME, BRAND) as a matched pair; every
           concurrent read of 007's profile must see one submit's pair
           (or the baseline), never a mix *)
        let env = FC.make ~customers:2 () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let baseline =
          split_pair (Xqse.Session.eval_to_string sess pair_query)
        in
        let n = 40 in
        let results = Array.make n ("", "") in
        let job i =
          if i mod 4 = 3 then
            {
              Pool.j_kind = Pool.Submit;
              j_label = Printf.sprintf "submit#%d" i;
              j_arrival_ms = 0.;
              j_deadline_ms = None;
              j_run =
                (fun _ ->
                  if not (submit_pair_retry env i) then
                    failwith "submit aborted");
            }
          else
            {
              Pool.j_kind = Pool.Read;
              j_label = Printf.sprintf "read#%d" i;
              j_arrival_ms = 0.;
              j_deadline_ms = None;
              j_run =
                (fun s ->
                  results.(i) <-
                    split_pair (Xqse.Session.eval_to_string s pair_query));
            }
        in
        let rp = Pool.run ~workers:4 ~session:sess (List.init n job) in
        check_int "all ok" n rp.Pool.r_ok;
        Array.iteri
          (fun i (ln, br) ->
            if (ln, br) <> ("", "") && not (pair_consistent ~baseline (ln, br))
            then
              Alcotest.failf "read %d saw a torn pair: %s | %s" i ln br)
          results;
        (* and the sources themselves hold a matched pair *)
        check_bool "sources consistent after the storm" true
          (pair_consistent ~baseline (text (lastname env), text (brand env))));
    case "chaos with concurrent workers leaves zero partial commits"
      (fun () ->
        (* the suite_resilience atomicity invariant, now with 3 worker
           domains racing reads against faulting submits: whatever
           aborts, the (db1, db2) pair must stay matched *)
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let ctl =
          Resilience.Control.create
            ~plan:(Resilience.Plan.make ~seed:7 ~profile:Resilience.Plan.Heavy ())
            ~instr ()
        in
        List.iter
          (fun source ->
            Resilience.Control.set_policy ctl ~source
              (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5.
                 ~jitter_ms:2. ()))
          [ "db1"; "db2" ];
        Resilience.Control.set_policy ctl ~source:"CreditRatingService"
          (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
             ~breaker:
               { Resilience.Breaker.failure_threshold = 4; cooldown_ms = 400. }
             ());
        Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
        let env = FC.make ~customers:2 ~seed:7 ~instr ~resilience:ctl () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let baseline = (text (lastname env), text (brand env)) in
        let violations = ref [] in
        let vmutex = Mutex.create () in
        let job i =
          if i mod 3 = 2 then
            {
              Pool.j_kind = Pool.Submit;
              j_label = Printf.sprintf "submit#%d" i;
              j_arrival_ms = 0.;
              j_deadline_ms = None;
              j_run =
                (fun _ ->
                  (* aborts are expected under chaos; partial commits
                     are not. The pair check reads one pinned snapshot,
                     so rival commits cannot fake a torn observation. *)
                  (try ignore (submit_pair env i) with _ -> ());
                  let pair = snapshot_pair env in
                  if not (pair_consistent ~baseline pair) then
                    Mutex.protect vmutex (fun () ->
                        violations :=
                          Printf.sprintf "after submit#%d: %s | %s" i
                            (fst pair) (snd pair)
                          :: !violations));
            }
          else
            {
              Pool.j_kind = Pool.Read;
              j_label = Printf.sprintf "read#%d" i;
              j_arrival_ms = 0.;
              j_deadline_ms = None;
              j_run =
                (fun s ->
                  match Xqse.Session.eval_to_string s pair_query with
                  | result ->
                    let pair = split_pair result in
                    if not (pair_consistent ~baseline pair) then
                      Mutex.protect vmutex (fun () ->
                          violations :=
                            Printf.sprintf "read#%d tore: %s" i result
                            :: !violations)
                  | exception _ -> () (* chaos: reads may fail *));
            }
        in
        let rp = Pool.run ~workers:3 ~session:sess (List.init 45 job) in
        check_int "every job drained" 45 rp.Pool.r_jobs;
        check_string "zero partial commits" ""
          (String.concat "; " !violations);
        check_bool "final pair matched" true
          (pair_consistent ~baseline (text (lastname env), text (brand env))));
  ]

let cache_tests =
  [
    case "4 workers: reads racing submits never serve a stale cached pair"
      (fun () ->
        (* the isolation storm again, now with the result cache on: a
           read served from cache after a submit committed would surface
           the pre-submit pair — lineage eviction must prevent it *)
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let env = FC.make ~customers:2 ~instr () in
        ignore (Aldsp.Dataspace.enable_result_cache env.FC.ds);
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let baseline =
          split_pair (Xqse.Session.eval_to_string sess pair_query)
        in
        (* warm the cache so the racing reads start from hot entries *)
        ignore (Xqse.Session.eval_to_string sess pair_query);
        let n = 40 in
        let results = Array.make n ("", "") in
        let job i =
          if i mod 4 = 3 then
            {
              Pool.j_kind = Pool.Submit;
              j_label = Printf.sprintf "submit#%d" i;
              j_arrival_ms = 0.;
              j_deadline_ms = None;
              j_run =
                (fun _ ->
                  if not (submit_pair_retry env i) then
                    failwith "submit aborted");
            }
          else
            {
              Pool.j_kind = Pool.Read;
              j_label = Printf.sprintf "read#%d" i;
              j_arrival_ms = 0.;
              j_deadline_ms = None;
              j_run =
                (fun s ->
                  results.(i) <-
                    split_pair (Xqse.Session.eval_to_string s pair_query));
            }
        in
        let rp = Pool.run ~workers:4 ~session:sess (List.init n job) in
        check_int "all ok" n rp.Pool.r_ok;
        Array.iteri
          (fun i (ln, br) ->
            if (ln, br) <> ("", "") && not (pair_consistent ~baseline (ln, br))
            then
              Alcotest.failf "read %d saw a stale or torn pair: %s | %s" i ln
                br)
          results;
        (* the decisive coherence check: a read through the warm cache
           agrees with the sources after every submit has committed *)
        let final = split_pair (Xqse.Session.eval_to_string sess pair_query) in
        check_bool "cached read agrees with the sources" true
          (final = (text (lastname env), text (brand env)));
        let st = Instr.stats instr in
        let c name =
          Option.value ~default:0 (List.assoc_opt name st.Instr.counters)
        in
        check_bool "the cache actually served hits" true
          (c Instr.K.cache_hit > 0);
        check_bool "the submits actually evicted" true
          (c Instr.K.cache_evict > 0));
    case "chaos with workers and cache enabled leaves zero partial commits"
      (fun () ->
        (* the atomicity invariant must survive the cache too: faulting
           submits may abort mid-plan, and whatever they managed to
           write must still evict before any cached read replays *)
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let ctl =
          Resilience.Control.create
            ~plan:(Resilience.Plan.make ~seed:7 ~profile:Resilience.Plan.Heavy ())
            ~instr ()
        in
        List.iter
          (fun source ->
            Resilience.Control.set_policy ctl ~source
              (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5.
                 ~jitter_ms:2. ()))
          [ "db1"; "db2" ];
        Resilience.Control.set_policy ctl ~source:"CreditRatingService"
          (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
             ~breaker:
               { Resilience.Breaker.failure_threshold = 4; cooldown_ms = 400. }
             ());
        Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
        let env = FC.make ~customers:2 ~seed:7 ~instr ~resilience:ctl () in
        ignore (Aldsp.Dataspace.enable_result_cache env.FC.ds);
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let baseline = (text (lastname env), text (brand env)) in
        let violations = ref [] in
        let vmutex = Mutex.create () in
        let job i =
          if i mod 3 = 2 then
            {
              Pool.j_kind = Pool.Submit;
              j_label = Printf.sprintf "submit#%d" i;
              j_arrival_ms = 0.;
              j_deadline_ms = None;
              j_run =
                (fun _ ->
                  (try ignore (submit_pair env i) with _ -> ());
                  let pair = snapshot_pair env in
                  if not (pair_consistent ~baseline pair) then
                    Mutex.protect vmutex (fun () ->
                        violations :=
                          Printf.sprintf "after submit#%d: %s | %s" i
                            (fst pair) (snd pair)
                          :: !violations));
            }
          else
            {
              Pool.j_kind = Pool.Read;
              j_label = Printf.sprintf "read#%d" i;
              j_arrival_ms = 0.;
              j_deadline_ms = None;
              j_run =
                (fun s ->
                  match Xqse.Session.eval_to_string s pair_query with
                  | result ->
                    let pair = split_pair result in
                    if not (pair_consistent ~baseline pair) then
                      Mutex.protect vmutex (fun () ->
                          violations :=
                            Printf.sprintf "read#%d tore: %s" i result
                            :: !violations)
                  | exception _ -> () (* chaos: reads may fail *));
            }
        in
        let rp = Pool.run ~workers:4 ~session:sess (List.init 45 job) in
        check_int "every job drained" 45 rp.Pool.r_jobs;
        check_string "zero partial commits" ""
          (String.concat "; " !violations);
        check_bool "final pair matched" true
          (pair_consistent ~baseline (text (lastname env), text (brand env)));
        (* once the plan quiets down the cached view must re-agree with
           the sources (reads may still degrade, never go stale) *)
        (match Xqse.Session.eval_to_string sess pair_query with
        | result ->
          check_bool "post-chaos cached read agrees with the sources" true
            (pair_consistent ~baseline (split_pair result))
        | exception _ -> ()));
  ]

(* The trajectory slicer's edges, driven directly through the exposed
   Pool.trajectory (run calls it with measured latencies). *)
let trajectory_tests =
  let noop_at arrival =
    {
      Pool.j_kind = Pool.Read;
      j_label = "t";
      j_arrival_ms = arrival;
      j_deadline_ms = None;
      j_run = ignore;
    }
  in
  let windows arrivals =
    let jobs = Array.of_list (List.map noop_at arrivals) in
    let lat = Array.map (fun j -> j.Pool.j_arrival_ms +. 1.) jobs in
    Pool.trajectory ~window_ms:25. jobs lat
  in
  [
    case "an arrival exactly on a boundary opens the next window" (fun () ->
        let ws = windows [ 0.; 24.9; 25.; 50. ] in
        check_int "three windows" 3 (List.length ws);
        check_bool "froms" true
          (List.map (fun w -> w.Pool.w_from_ms) ws = [ 0.; 25.; 50. ]);
        check_bool "counts" true
          (List.map (fun w -> w.Pool.w_jobs) ws = [ 2; 1; 1 ]));
    case "interior and trailing empty windows are dropped" (fun () ->
        let ws = windows [ 0.; 100. ] in
        check_int "only populated windows" 2 (List.length ws);
        check_bool "froms skip the gap" true
          (List.map (fun w -> w.Pool.w_from_ms) ws = [ 0.; 100. ]));
    case "a single-job run is one window, bucket-floored" (fun () ->
        match windows [ 10. ] with
        | [ w ] ->
          check_bool "floored to the window start" true (w.Pool.w_from_ms = 0.);
          check_int "one job" 1 w.Pool.w_jobs;
          check_bool "its latency is the whole distribution" true
            (w.Pool.w_latency.Pool.l_p50 = 11.
            && w.Pool.w_latency.Pool.l_max = 11.)
        | ws -> Alcotest.failf "expected one window, got %d" (List.length ws));
  ]

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let counter instr name =
  match List.assoc_opt name (Instr.stats instr).Instr.counters with
  | Some v -> v
  | None -> 0

let overload_tests =
  [
    case "3x-capacity storm with deadlines and shedding stays bounded"
      (fun () ->
        (* measure the single-worker closed-loop ceiling, then offer
           three times that. Shedding must keep the accepted p99 within
           the deadline, refuse with stable codes only, hold goodput
           near the ceiling, and leave the cross-database pair matched *)
        let capacity =
          let env = FC.make ~customers:3 () in
          let sess = Aldsp.Dataspace.session env.FC.ds in
          let warmup = Workload.jobs ~io_ms:2. ~customers:3 ~seed:21 ~count:60 env in
          (Pool.run ~workers:1 ~session:sess warmup).Pool.r_qps
        in
        let env = FC.make ~customers:3 () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let baseline = (text (lastname env), text (brand env)) in
        let jobs =
          Workload.jobs ~io_ms:2. ~rate:(3. *. capacity) ~customers:3 ~seed:22
            ~count:150 env
        in
        let overload =
          {
            Pool.no_overload with
            o_deadline_ms = Some 250.;
            o_shed =
              Some { Pool.sp_queue_bound = None; sp_delay_target_ms = Some 50. };
          }
        in
        let rp = Pool.run ~workers:1 ~overload ~session:sess jobs in
        check_int "admission accounts for every job" rp.Pool.r_jobs
          (rp.Pool.r_accepted + rp.Pool.r_shed + rp.Pool.r_expired);
        check_bool "the storm actually shed" true (rp.Pool.r_shed > 0);
        check_bool "accepted p99 within the deadline" true
          (rp.Pool.r_accepted_latency.Pool.l_p99 <= 250.);
        check_bool "refusals carry stable codes only" true
          (rp.Pool.r_error_kinds <> []
          && List.for_all
               (fun (k, _) -> k = "RESX0005" || k = "RESX0006")
               rp.Pool.r_error_kinds);
        (* nominal runs land within a few percent of the ceiling; the
           pinned bound leaves margin for loaded CI machines *)
        if rp.Pool.r_goodput < 0.8 *. capacity then
          Alcotest.failf
            "goodput %.0f below 80%% of the %.0f qps ceiling (accepted %d \
             shed %d expired %d ok %d wall %.0fms)"
            rp.Pool.r_goodput capacity rp.Pool.r_accepted rp.Pool.r_shed
            rp.Pool.r_expired rp.Pool.r_ok rp.Pool.r_wall_ms;
        check_int "every accepted job succeeded" rp.Pool.r_accepted
          rp.Pool.r_ok;
        check_bool "zero partial commits" true
          (pair_consistent ~baseline (text (lastname env), text (brand env))));
    case "without shedding a dead budget expires in the queue as RESX0005"
      (fun () ->
        let env = FC.make ~customers:2 () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let jobs =
          Workload.jobs ~io_ms:2. ~rate:2000. ~deadline_ms:40. ~customers:2
            ~seed:23 ~count:80 env
        in
        let rp = Pool.run ~workers:1 ~session:sess jobs in
        check_bool "some budgets died waiting" true (rp.Pool.r_expired > 0);
        check_bool "reported as RESX0005" true
          (List.mem_assoc "RESX0005" rp.Pool.r_error_kinds);
        check_int "nothing shed without a policy" 0 rp.Pool.r_shed;
        check_int "expired + accepted = jobs" rp.Pool.r_jobs
          (rp.Pool.r_accepted + rp.Pool.r_expired));
    case "brownout enters under pressure and always exits" (fun () ->
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let ctl = Resilience.Control.create ~instr () in
        Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
        let env = FC.make ~customers:2 ~instr ~resilience:ctl () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let jobs =
          Workload.jobs ~io_ms:2. ~rate:1500. ~customers:2 ~seed:24 ~count:80
            env
        in
        let overload =
          {
            Pool.no_overload with
            o_brownout =
              Some
                {
                  Pool.b_enter_ms = 10.;
                  b_exit_ms = 2.;
                  b_apply = Resilience.Control.set_brownout ctl;
                };
            o_clock = Some (Resilience.Control.clock ctl);
          }
        in
        let rp = Pool.run ~workers:1 ~overload ~session:sess jobs in
        check_int "all drained" 80 rp.Pool.r_jobs;
        check_bool "entered at least once" true
          (counter instr Instr.K.overload_brownout_entered >= 1);
        check_int "every entry was exited"
          (counter instr Instr.K.overload_brownout_entered)
          (counter instr Instr.K.overload_brownout_exited);
        check_bool "control cleared after the run" false
          (Resilience.Control.in_brownout ctl);
        check_bool "reads actually degraded while browned out" true
          (counter instr Instr.K.resil_degraded > 0));
    case "brownout prefers warm cache hits and never caches degraded reads"
      (fun () ->
        let make_env () =
          let instr = Instr.create () in
          Instr.preregister instr;
          Instr.enable instr;
          let ctl = Resilience.Control.create ~instr () in
          Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
          let env = FC.make ~customers:3 ~instr ~resilience:ctl () in
          ignore (Aldsp.Dataspace.enable_result_cache env.FC.ds);
          (env, ctl, instr)
        in
        let q = {|profile:getProfileById("007")|} in
        (* phase 1: an entry admitted before the brownout keeps serving
           — the warm hit short-circuits before the degradable source,
           so the client still gets the full (rated) profile *)
        let env, ctl, instr = make_env () in
        let eval () =
          Xqse.Session.eval_to_string (Aldsp.Dataspace.session env.FC.ds) q
        in
        let full = eval () in
        check_bool "baseline carries the rating" true
          (contains full "CreditRating");
        Resilience.Control.set_brownout ctl true;
        let hits0 = counter instr Instr.K.cache_hit in
        check_string "warm entry short-circuits the degraded source" full
          (eval ());
        check_bool "served from cache" true
          (counter instr Instr.K.cache_hit > hits0);
        (* phase 2: a genuinely cold read under brownout degrades — and
           the degraded result must never be admitted to the cache *)
        let env, ctl, instr = make_env () in
        let eval () =
          Xqse.Session.eval_to_string (Aldsp.Dataspace.session env.FC.ds) q
        in
        Resilience.Control.set_brownout ctl true;
        let cold = eval () in
        if contains cold "CreditRating" then
          Alcotest.failf "cold read not degraded under brownout: %s"
            (String.sub cold 0 (min 300 (String.length cold)));
        ignore (instr : Instr.t);
        check_bool "degraded replay still degraded" false
          (contains (eval ()) "CreditRating");
        Resilience.Control.set_brownout ctl false;
        (* the decisive check: were any degraded result admitted, this
           post-brownout eval would serve it and still lack the rating *)
        check_bool "full result restored after brownout" true
          (contains (eval ()) "CreditRating"));
    case "chaos storm with overload protection leaves zero partial commits"
      (fun () ->
        (* the isolation-suite chaos invariant with every overload
           defense armed at once: whatever is shed, expired or aborted,
           the (db1, db2) pair stays matched — a submit that entered XA
           prepare runs to completion exempt from its budget *)
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let ctl =
          Resilience.Control.create
            ~plan:(Resilience.Plan.make ~seed:7 ~profile:Resilience.Plan.Heavy ())
            ~instr ()
        in
        List.iter
          (fun source ->
            Resilience.Control.set_policy ctl ~source
              (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5.
                 ~jitter_ms:2. ()))
          [ "db1"; "db2" ];
        Resilience.Control.set_policy ctl ~source:"CreditRatingService"
          (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
             ~breaker:
               { Resilience.Breaker.failure_threshold = 4; cooldown_ms = 400. }
             ());
        Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
        let env = FC.make ~customers:2 ~seed:7 ~instr ~resilience:ctl () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let baseline = (text (lastname env), text (brand env)) in
        let violations = ref [] in
        let vmutex = Mutex.create () in
        let job i =
          let arrival = float_of_int i *. 1. in
          if i mod 3 = 2 then
            {
              Pool.j_kind = Pool.Submit;
              j_label = Printf.sprintf "submit#%d" i;
              j_arrival_ms = arrival;
              j_deadline_ms = None;
              j_run =
                (fun _ ->
                  (try ignore (submit_pair env i) with _ -> ());
                  let pair = snapshot_pair env in
                  if not (pair_consistent ~baseline pair) then
                    Mutex.protect vmutex (fun () ->
                        violations :=
                          Printf.sprintf "after submit#%d: %s | %s" i
                            (fst pair) (snd pair)
                          :: !violations));
            }
          else
            {
              Pool.j_kind = Pool.Read;
              j_label = Printf.sprintf "read#%d" i;
              j_arrival_ms = arrival;
              j_deadline_ms = None;
              j_run =
                (fun s ->
                  match Xqse.Session.eval_to_string s pair_query with
                  | result ->
                    let pair = split_pair result in
                    if not (pair_consistent ~baseline pair) then
                      Mutex.protect vmutex (fun () ->
                          violations :=
                            Printf.sprintf "read#%d tore: %s" i result
                            :: !violations)
                  | exception _ -> () (* chaos and expiry: reads may fail *));
            }
        in
        let overload =
          {
            Pool.o_deadline_ms = Some 200.;
            o_shed =
              Some
                { Pool.sp_queue_bound = Some 8; sp_delay_target_ms = Some 50. };
            o_brownout =
              Some
                {
                  Pool.b_enter_ms = 15.;
                  b_exit_ms = 3.;
                  b_apply = Resilience.Control.set_brownout ctl;
                };
            o_clock = Some (Resilience.Control.clock ctl);
          }
        in
        let rp = Pool.run ~workers:3 ~overload ~session:sess (List.init 45 job) in
        check_int "every job accounted for" 45
          (rp.Pool.r_accepted + rp.Pool.r_shed + rp.Pool.r_expired);
        check_string "zero partial commits" ""
          (String.concat "; " !violations);
        check_bool "final pair matched" true
          (pair_consistent ~baseline (text (lastname env), text (brand env)));
        check_bool "brownout cleared" false (Resilience.Control.in_brownout ctl));
  ]

(* MVCC at the server's grain: submits lock only the tables their plan
   writes, so disjoint writers run in parallel, and a pinned snapshot
   outlives a rival commit. All timing-independent — the proofs are
   lock-state and counter assertions, not latency comparisons. *)
let mvcc_tests =
  [
    case "a submit commits while an unrelated table's write lock is held"
      (fun () ->
        (* the submit's lockset is {db1.CUSTOMER, db2.CREDIT_CARD};
           holding ORDERS — same database, not in the plan — must not
           exclude it. Join-while-held is the proof: under the retired
           pool/global lock this deadlocked or serialized. *)
        let env = FC.make ~customers:2 () in
        R.Table.lock_write env.FC.orders;
        let committed =
          Fun.protect
            ~finally:(fun () -> R.Table.unlock_write env.FC.orders)
          @@ fun () -> Domain.join (Domain.spawn (fun () -> submit_pair env 3))
        in
        check_bool "committed under the foreign lock" true committed;
        check_bool "pair written" true
          ((text (lastname env), text (brand env)) = ("Name3", "BRAND3")));
    case "same-table submits queue on the write lock, then commit" (fun () ->
        let env = FC.make ~customers:2 () in
        R.Table.lock_write env.FC.customer;
        let d = Domain.spawn (fun () -> submit_pair env 5) in
        (* the rival must park on CUSTOMER's lock (its first in the
           ordered lockset): waiters becomes visible, deterministically *)
        let rec await n =
          let _, waiters = R.Table.lock_info env.FC.customer in
          if waiters >= 1 then true
          else if n = 0 then false
          else begin
            Unix.sleepf 0.001;
            await (n - 1)
          end
        in
        let queued = await 5000 in
        R.Table.unlock_write env.FC.customer;
        let committed = Domain.join d in
        check_bool "writer queued while the lock was held" true queued;
        check_bool "committed after release" true committed;
        check_bool "pair written" true
          ((text (lastname env), text (brand env)) = ("Name5", "BRAND5")));
    case "disjoint-table writers acquire without contention" (fun () ->
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let env = FC.make ~customers:2 ~instr () in
        let base_acq = counter instr Instr.K.mvcc_lock_acquired in
        let n = 50 in
        let insert db table columns values =
          ignore (R.Database.exec db (R.Database.Insert { table; columns; values }))
        in
        let w1 =
          Domain.spawn (fun () ->
              for i = 0 to n - 1 do
                insert env.FC.db1 "ORDERS" [ "OID"; "CID" ]
                  [ R.Value.Int (9000 + i); R.Value.Text "007" ]
              done)
        and w2 =
          Domain.spawn (fun () ->
              for i = 0 to n - 1 do
                insert env.FC.db2 "CREDIT_CARD" [ "CCID"; "CID" ]
                  [ R.Value.Int (8000 + i); R.Value.Text "007" ]
              done)
        in
        Domain.join w1;
        Domain.join w2;
        check_int "no contention across disjoint tables" 0
          (counter instr Instr.K.mvcc_lock_contended);
        check_bool "locks were actually taken" true
          (counter instr Instr.K.mvcc_lock_acquired >= base_acq + (2 * n)));
    case "a pinned snapshot spans a concurrent commit" (fun () ->
        let env = FC.make ~customers:2 () in
        let before = (text (lastname env), text (brand env)) in
        let live0 = R.Table.live_versions env.FC.customer in
        R.Table.with_snapshot
          [ env.FC.customer; env.FC.credit_card ]
          (fun () ->
            check_bool "inside: the baseline cut" true
              ((text (lastname env), text (brand env)) = before);
            let committed =
              Domain.join (Domain.spawn (fun () -> submit_pair env 9))
            in
            check_bool "writer committed mid-snapshot" true committed;
            (* the decisive read: the rival's commit is published, yet
               this domain still sees its pinned version *)
            check_bool "inside: still the pinned cut" true
              ((text (lastname env), text (brand env)) = before);
            check_int "superseded version stays live while pinned"
              (live0 + 1)
              (R.Table.live_versions env.FC.customer));
        check_bool "outside: the committed pair" true
          ((text (lastname env), text (brand env)) = ("Name9", "BRAND9"));
        check_int "superseded version collected on release" live0
          (R.Table.live_versions env.FC.customer));
  ]

let suites =
  [
    ("server.pool", pool_tests); ("server.trajectory", trajectory_tests);
    ("server.overload", overload_tests);
    ("server.isolation", isolation_tests); ("server.mvcc", mvcc_tests);
    ("server.cache", cache_tests);
  ]
