(* The concurrent query server: worker-pool correctness under
   deterministic seeds, snapshot-read isolation between concurrent
   reads and submits, and the cross-database atomicity invariant under
   chaos with multiple workers. *)

open Core
open Util
module FC = Fixtures.Customer_profile
module R = Relational
module Pool = Server.Pool
module Workload = Server.Workload

let value_at tbl pk col =
  match R.Table.find_pk tbl pk with
  | Some row -> R.Table.get row tbl col
  | None -> R.Value.Null

(* the two cells every submit rewrites as a matched pair, one per
   database — 007's last name in db1, card 900001's brand in db2 *)
let lastname env = value_at env.FC.customer [ R.Value.Text "007" ] "LAST_NAME"

let brand env =
  value_at env.FC.credit_card [ R.Value.Int 900001 ] "CC_BRAND"

let text = function R.Value.Text s -> s | v -> R.Value.to_string v

let suffix ~prefix s =
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

(* a consistent pair is (Name<k>, BRAND<k>) for one k, or the seeded
   baseline on both sides — anything else is a torn read or a partial
   commit *)
let pair_consistent ~baseline (ln, br) =
  baseline = (ln, br)
  ||
  match (suffix ~prefix:"Name" ln, suffix ~prefix:"BRAND" br) with
  | Some k1, Some k2 -> k1 = k2
  | _ -> false

let submit_pair env k =
  let dg = FC.get_profile_by_id env "007" in
  Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] (Printf.sprintf "Name%d" k);
  Sdo.set_leaf dg 1
    [ ("CreditCards", 1); ("CREDIT_CARD", 1); ("BRAND", 1) ]
    (Printf.sprintf "BRAND%d" k);
  (Aldsp.Dataspace.submit env.FC.ds env.FC.svc dg).Aldsp.Dataspace.sr_committed

let pair_query =
  {|let $p := profile:getProfileById("007")
    return fn:concat($p/LAST_NAME, "|",
                     ($p/CreditCards/CREDIT_CARD)[1]/BRAND)|}

let split_pair s =
  match String.index_opt s '|' with
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> (s, "")

let pool_tests =
  [
    case "percentiles are nearest-rank" (fun () ->
        let a = Array.init 100 (fun i -> float_of_int (i + 1)) in
        check_bool "p50" true (Pool.percentile a 50. = 50.);
        check_bool "p95" true (Pool.percentile a 95. = 95.);
        check_bool "p99" true (Pool.percentile a 99. = 99.);
        check_bool "empty" true (Pool.percentile [||] 50. = 0.));
    case "sequential pool drains every job in order" (fun () ->
        let env = FC.make ~customers:2 () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let order = ref [] in
        let job i =
          {
            Pool.j_kind = Pool.Read;
            j_label = Printf.sprintf "j%d" i;
            j_arrival_ms = 0.;
            j_run = (fun _ -> order := i :: !order);
          }
        in
        let rp = Pool.run ~workers:1 ~session:sess (List.init 5 job) in
        check_int "all ok" 5 rp.Pool.r_ok;
        check_bool "list order" true (List.rev !order = [ 0; 1; 2; 3; 4 ]));
    case "job exceptions are counted, not fatal" (fun () ->
        let env = FC.make ~customers:1 () in
        let instr = Instr.create () in
        Instr.enable instr;
        let template = Aldsp.Dataspace.session env.FC.ds in
        let sess =
          Xqse.Session.with_config template
            { (Xqse.Session.config template) with instr }
        in
        let boom =
          {
            Pool.j_kind = Pool.Script;
            j_label = "boom";
            j_arrival_ms = 0.;
            j_run = (fun _ -> failwith "boom");
          }
        and fine =
          {
            Pool.j_kind = Pool.Read;
            j_label = "fine";
            j_arrival_ms = 0.;
            j_run =
              (fun s -> ignore (Xqse.Session.eval s "count(profile:getProfile())"));
          }
        in
        let rp = Pool.run ~workers:1 ~session:sess [ boom; fine; boom ] in
        check_int "ok" 1 rp.Pool.r_ok;
        check_int "errors reported" 2 (List.length rp.Pool.r_errors);
        let st = Instr.stats instr in
        let c name =
          Option.value ~default:0 (List.assoc_opt name st.Instr.counters)
        in
        check_int "server.jobs" 3 (c Instr.K.server_jobs);
        check_int "server.errors" 2 (c Instr.K.server_errors));
    case "open-loop runs report a latency trajectory" (fun () ->
        let env = FC.make ~customers:2 () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let noop i arrival =
          {
            Pool.j_kind = Pool.Read;
            j_label = Printf.sprintf "j%d" i;
            j_arrival_ms = arrival;
            j_run = ignore;
          }
        in
        (* 20 arrivals spread over ~95 ms, bucketed into 25 ms windows *)
        let jobs = List.init 20 (fun i -> noop i (float_of_int i *. 5.)) in
        let rp = Pool.run ~workers:2 ~window_ms:25. ~session:sess jobs in
        check_bool "trajectory present" true (rp.Pool.r_trajectory <> []);
        check_int "windows partition the jobs" 20
          (List.fold_left
             (fun acc w -> acc + w.Pool.w_jobs)
             0 rp.Pool.r_trajectory);
        check_bool "windows are ordered" true
          (let froms = List.map (fun w -> w.Pool.w_from_ms) rp.Pool.r_trajectory in
           froms = List.sort compare froms);
        (* closed loop: no arrivals, no trajectory *)
        let closed = List.init 5 (fun i -> noop i 0.) in
        let rp2 = Pool.run ~workers:1 ~session:sess closed in
        check_bool "closed loop has none" true (rp2.Pool.r_trajectory = []));
    case "workload is a pure function of its seed" (fun () ->
        let env = FC.make ~customers:3 () in
        let sig_of js =
          List.map
            (fun j -> (j.Pool.j_label, j.Pool.j_kind, j.Pool.j_arrival_ms))
            js
        in
        let a = Workload.jobs ~rate:500. ~seed:11 ~count:60 env in
        let b = Workload.jobs ~rate:500. ~seed:11 ~count:60 env in
        let c = Workload.jobs ~rate:500. ~seed:12 ~count:60 env in
        check_bool "same seed, same jobs" true (sig_of a = sig_of b);
        check_bool "different seed, different jobs" true (sig_of a <> sig_of c));
    case "concurrent workload run completes clean and counts add up"
      (fun () ->
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let env = FC.make ~customers:3 ~instr () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let jobs = Workload.jobs ~customers:3 ~seed:5 ~count:60 env in
        let rp = Pool.run ~workers:3 ~session:sess jobs in
        check_int "all ok" 60 rp.Pool.r_ok;
        check_bool "throughput positive" true (rp.Pool.r_qps > 0.);
        check_int "kinds partition the jobs" 60
          (List.fold_left (fun a (_, n) -> a + n) 0 rp.Pool.r_by_kind);
        let st = Instr.stats instr in
        let c name =
          Option.value ~default:0 (List.assoc_opt name st.Instr.counters)
        in
        check_int "server.jobs counted across domains" 60
          (c Instr.K.server_jobs);
        check_int "no server errors" 0 (c Instr.K.server_errors);
        check_int "submits counted" (List.assoc "submit" rp.Pool.r_by_kind)
          (c Instr.K.server_submits));
  ]

let isolation_tests =
  [
    case "readers never see half a cross-database submit" (fun () ->
        (* submits rewrite (LAST_NAME, BRAND) as a matched pair; every
           concurrent read of 007's profile must see one submit's pair
           (or the baseline), never a mix *)
        let env = FC.make ~customers:2 () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let baseline =
          split_pair (Xqse.Session.eval_to_string sess pair_query)
        in
        let n = 40 in
        let results = Array.make n ("", "") in
        let job i =
          if i mod 4 = 3 then
            {
              Pool.j_kind = Pool.Submit;
              j_label = Printf.sprintf "submit#%d" i;
              j_arrival_ms = 0.;
              j_run =
                (fun _ ->
                  if not (submit_pair env i) then failwith "submit aborted");
            }
          else
            {
              Pool.j_kind = Pool.Read;
              j_label = Printf.sprintf "read#%d" i;
              j_arrival_ms = 0.;
              j_run =
                (fun s ->
                  results.(i) <-
                    split_pair (Xqse.Session.eval_to_string s pair_query));
            }
        in
        let rp = Pool.run ~workers:4 ~session:sess (List.init n job) in
        check_int "all ok" n rp.Pool.r_ok;
        Array.iteri
          (fun i (ln, br) ->
            if (ln, br) <> ("", "") && not (pair_consistent ~baseline (ln, br))
            then
              Alcotest.failf "read %d saw a torn pair: %s | %s" i ln br)
          results;
        (* and the sources themselves hold a matched pair *)
        check_bool "sources consistent after the storm" true
          (pair_consistent ~baseline (text (lastname env), text (brand env))));
    case "chaos with concurrent workers leaves zero partial commits"
      (fun () ->
        (* the suite_resilience atomicity invariant, now with 3 worker
           domains racing reads against faulting submits: whatever
           aborts, the (db1, db2) pair must stay matched *)
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let ctl =
          Resilience.Control.create
            ~plan:(Resilience.Plan.make ~seed:7 ~profile:Resilience.Plan.Heavy ())
            ~instr ()
        in
        List.iter
          (fun source ->
            Resilience.Control.set_policy ctl ~source
              (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5.
                 ~jitter_ms:2. ()))
          [ "db1"; "db2" ];
        Resilience.Control.set_policy ctl ~source:"CreditRatingService"
          (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
             ~breaker:
               { Resilience.Breaker.failure_threshold = 4; cooldown_ms = 400. }
             ());
        Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
        let env = FC.make ~customers:2 ~seed:7 ~instr ~resilience:ctl () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let baseline = (text (lastname env), text (brand env)) in
        let violations = ref [] in
        let vmutex = Mutex.create () in
        let job i =
          if i mod 3 = 2 then
            {
              Pool.j_kind = Pool.Submit;
              j_label = Printf.sprintf "submit#%d" i;
              j_arrival_ms = 0.;
              j_run =
                (fun _ ->
                  (* aborts are expected under chaos; partial commits
                     are not. The pair check runs while we still hold
                     the exclusive write lock. *)
                  (try ignore (submit_pair env i) with _ -> ());
                  let pair = (text (lastname env), text (brand env)) in
                  if not (pair_consistent ~baseline pair) then
                    Mutex.protect vmutex (fun () ->
                        violations :=
                          Printf.sprintf "after submit#%d: %s | %s" i
                            (fst pair) (snd pair)
                          :: !violations));
            }
          else
            {
              Pool.j_kind = Pool.Read;
              j_label = Printf.sprintf "read#%d" i;
              j_arrival_ms = 0.;
              j_run =
                (fun s ->
                  match Xqse.Session.eval_to_string s pair_query with
                  | result ->
                    let pair = split_pair result in
                    if not (pair_consistent ~baseline pair) then
                      Mutex.protect vmutex (fun () ->
                          violations :=
                            Printf.sprintf "read#%d tore: %s" i result
                            :: !violations)
                  | exception _ -> () (* chaos: reads may fail *));
            }
        in
        let rp = Pool.run ~workers:3 ~session:sess (List.init 45 job) in
        check_int "every job drained" 45 rp.Pool.r_jobs;
        check_string "zero partial commits" ""
          (String.concat "; " !violations);
        check_bool "final pair matched" true
          (pair_consistent ~baseline (text (lastname env), text (brand env))));
  ]

let cache_tests =
  [
    case "4 workers: reads racing submits never serve a stale cached pair"
      (fun () ->
        (* the isolation storm again, now with the result cache on: a
           read served from cache after a submit committed would surface
           the pre-submit pair — lineage eviction must prevent it *)
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let env = FC.make ~customers:2 ~instr () in
        ignore (Aldsp.Dataspace.enable_result_cache env.FC.ds);
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let baseline =
          split_pair (Xqse.Session.eval_to_string sess pair_query)
        in
        (* warm the cache so the racing reads start from hot entries *)
        ignore (Xqse.Session.eval_to_string sess pair_query);
        let n = 40 in
        let results = Array.make n ("", "") in
        let job i =
          if i mod 4 = 3 then
            {
              Pool.j_kind = Pool.Submit;
              j_label = Printf.sprintf "submit#%d" i;
              j_arrival_ms = 0.;
              j_run =
                (fun _ ->
                  if not (submit_pair env i) then failwith "submit aborted");
            }
          else
            {
              Pool.j_kind = Pool.Read;
              j_label = Printf.sprintf "read#%d" i;
              j_arrival_ms = 0.;
              j_run =
                (fun s ->
                  results.(i) <-
                    split_pair (Xqse.Session.eval_to_string s pair_query));
            }
        in
        let rp = Pool.run ~workers:4 ~session:sess (List.init n job) in
        check_int "all ok" n rp.Pool.r_ok;
        Array.iteri
          (fun i (ln, br) ->
            if (ln, br) <> ("", "") && not (pair_consistent ~baseline (ln, br))
            then
              Alcotest.failf "read %d saw a stale or torn pair: %s | %s" i ln
                br)
          results;
        (* the decisive coherence check: a read through the warm cache
           agrees with the sources after every submit has committed *)
        let final = split_pair (Xqse.Session.eval_to_string sess pair_query) in
        check_bool "cached read agrees with the sources" true
          (final = (text (lastname env), text (brand env)));
        let st = Instr.stats instr in
        let c name =
          Option.value ~default:0 (List.assoc_opt name st.Instr.counters)
        in
        check_bool "the cache actually served hits" true
          (c Instr.K.cache_hit > 0);
        check_bool "the submits actually evicted" true
          (c Instr.K.cache_evict > 0));
    case "chaos with workers and cache enabled leaves zero partial commits"
      (fun () ->
        (* the atomicity invariant must survive the cache too: faulting
           submits may abort mid-plan, and whatever they managed to
           write must still evict before any cached read replays *)
        let instr = Instr.create () in
        Instr.preregister instr;
        Instr.enable instr;
        let ctl =
          Resilience.Control.create
            ~plan:(Resilience.Plan.make ~seed:7 ~profile:Resilience.Plan.Heavy ())
            ~instr ()
        in
        List.iter
          (fun source ->
            Resilience.Control.set_policy ctl ~source
              (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5.
                 ~jitter_ms:2. ()))
          [ "db1"; "db2" ];
        Resilience.Control.set_policy ctl ~source:"CreditRatingService"
          (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
             ~breaker:
               { Resilience.Breaker.failure_threshold = 4; cooldown_ms = 400. }
             ());
        Resilience.Control.set_degradable ctl ~source:"CreditRatingService";
        let env = FC.make ~customers:2 ~seed:7 ~instr ~resilience:ctl () in
        ignore (Aldsp.Dataspace.enable_result_cache env.FC.ds);
        let sess = Aldsp.Dataspace.session env.FC.ds in
        let baseline = (text (lastname env), text (brand env)) in
        let violations = ref [] in
        let vmutex = Mutex.create () in
        let job i =
          if i mod 3 = 2 then
            {
              Pool.j_kind = Pool.Submit;
              j_label = Printf.sprintf "submit#%d" i;
              j_arrival_ms = 0.;
              j_run =
                (fun _ ->
                  (try ignore (submit_pair env i) with _ -> ());
                  let pair = (text (lastname env), text (brand env)) in
                  if not (pair_consistent ~baseline pair) then
                    Mutex.protect vmutex (fun () ->
                        violations :=
                          Printf.sprintf "after submit#%d: %s | %s" i
                            (fst pair) (snd pair)
                          :: !violations));
            }
          else
            {
              Pool.j_kind = Pool.Read;
              j_label = Printf.sprintf "read#%d" i;
              j_arrival_ms = 0.;
              j_run =
                (fun s ->
                  match Xqse.Session.eval_to_string s pair_query with
                  | result ->
                    let pair = split_pair result in
                    if not (pair_consistent ~baseline pair) then
                      Mutex.protect vmutex (fun () ->
                          violations :=
                            Printf.sprintf "read#%d tore: %s" i result
                            :: !violations)
                  | exception _ -> () (* chaos: reads may fail *));
            }
        in
        let rp = Pool.run ~workers:4 ~session:sess (List.init 45 job) in
        check_int "every job drained" 45 rp.Pool.r_jobs;
        check_string "zero partial commits" ""
          (String.concat "; " !violations);
        check_bool "final pair matched" true
          (pair_consistent ~baseline (text (lastname env), text (brand env)));
        (* once the plan quiets down the cached view must re-agree with
           the sources (reads may still degrade, never go stale) *)
        (match Xqse.Session.eval_to_string sess pair_query with
        | result ->
          check_bool "post-chaos cached read agrees with the sources" true
            (pair_consistent ~baseline (split_pair result))
        | exception _ -> ()));
  ]

let suites =
  [
    ("server.pool", pool_tests); ("server.isolation", isolation_tests);
    ("server.cache", cache_tests);
  ]
